(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6.4 Figures 7-8, §8 Figures 9-11, the §8.2/§8.3 headline
   numbers, and Figure 6's sensitivity table), and measures this
   implementation's own primitive costs with Bechamel.

     dune exec bench/main.exe

   Paper numbers are printed beside ours.  Absolute performance numbers
   for the server figures come from the calibrated cost model (the
   paper's testbed constants); the Bechamel section reports what this
   machine's pure-OCaml crypto sustains and rescales the headline
   prediction to it. *)

open Bechamel
open Toolkit
open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela

let line () = print_endline (String.make 78 '-')

let section title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let make_bench_tests () =
  let rng = Drbg.of_string "bench" in
  let sk, _pk = Drbg.keypair ~rng () in
  let _peer_sk, peer_pk = Drbg.keypair ~rng () in
  let key = Drbg.generate rng 32 in
  let nonce = Aead.nonce_of ~domain:1 ~counter:1 in
  let msg256 = Drbg.generate rng 240 in
  let server_pks = List.init 3 (fun _ -> snd (Drbg.keypair ~rng ())) in
  let payload = Drbg.generate rng Types.exchange_payload_len in
  let alice = Types.identity_of_seed (Bytes.of_string "bench-alice") in
  let session = Conversation.derive ~identity:alice ~peer_pk in
  let shuffle_data = Array.init 4096 Fun.id in
  let laplace = Laplace.params ~mu:300_000. ~b:13_800. in
  [
    Test.make ~name:"x25519/scalarmult"
      (Staged.stage (fun () -> Curve25519.shared ~secret:sk ~public:peer_pk));
    Test.make ~name:"crypto/aead-seal-240B"
      (Staged.stage (fun () -> Aead.seal ~key ~nonce msg256));
    Test.make ~name:"crypto/sha256-240B"
      (Staged.stage (fun () -> Sha256.digest msg256));
    Test.make ~name:"crypto/hmac-240B"
      (Staged.stage (fun () -> Hmac.sha256 ~key msg256));
    Test.make ~name:"onion/wrap-3-layers"
      (Staged.stage (fun () ->
           Vuvuzela_mixnet.Onion.wrap ~rng ~server_pks ~round:1 payload));
    Test.make ~name:"mixnet/shuffle-4096"
      (Staged.stage (fun () ->
           Vuvuzela_mixnet.Shuffle.apply
             (Vuvuzela_mixnet.Shuffle.random_permutation ~rng 4096)
             shuffle_data));
    Test.make ~name:"dp/laplace-truncated-sample"
      (Staged.stage (fun () -> Laplace.truncated_sample ~rng laplace));
    Test.make ~name:"protocol/exchange-payload"
      (Staged.stage (fun () ->
           Conversation.exchange_payload session ~round:1
             (Message.Empty { ack = 0 })));
    (let sk, _pk = Ed25519.keypair ~rng () in
     let msg = Drbg.generate rng 200 in
     Test.make ~name:"crypto/ed25519-sign"
       (Staged.stage (fun () -> Ed25519.sign ~secret:sk msg)));
    (let sk, pk = Ed25519.keypair ~rng () in
     let msg = Drbg.generate rng 200 in
     let signature = Ed25519.sign ~secret:sk msg in
     Test.make ~name:"crypto/ed25519-verify"
       (Staged.stage (fun () -> Ed25519.verify ~public:pk ~signature msg)));
  ]

(* A full conversation round, end to end, through a real 3-server chain
   with 4 clients: one Bechamel sample = one complete round (client
   wrapping, 3 peels + noise + shuffles, dead-drop matching, replies,
   unwrapping). *)
let make_round_bench () =
  let noise = Laplace.params ~mu:2. ~b:1. in
  let chain =
    Chain.of_config
      Config.(
        default |> with_seed "bench-chain" |> with_noise noise
        |> with_dial_noise (Laplace.params ~mu:1. ~b:1.)
        |> with_noise_mode Noise.Deterministic)
  in
  let pks = Chain.public_keys chain in
  let clients =
    List.init 4 (fun i ->
        let id =
          Types.identity_of_seed
            (Bytes.of_string (Printf.sprintf "bench-c%d" i))
        in
        Client.create ~seed:(Printf.sprintf "bench-c%d" i) ~identity:id
          ~server_pks:pks ())
  in
  (match clients with
  | a :: b :: _ ->
      Client.start_conversation a ~peer_pk:(Client.public_key b);
      Client.start_conversation b ~peer_pk:(Client.public_key a)
  | _ -> ());
  let round = ref 0 in
  Test.make ~name:"round/full-3srv-4clients"
    (Staged.stage (fun () ->
         incr round;
         let requests =
           Array.of_list
             (List.map
                (fun c -> Client.conversation_request c ~round:!round)
                clients)
         in
         let results = Chain.conversation_round_exn chain ~round:!round requests in
         List.iteri
           (fun i c ->
             ignore (Client.handle_conversation_reply c ~round:!round results.(i)))
           clients))

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let run_benchmarks () =
  section "MICRO-BENCHMARKS (Bechamel, this machine, pure OCaml)";
  let tests =
    Test.make_grouped ~name:"vuvuzela" ~fmt:"%s %s"
      (make_bench_tests () @ [ make_round_bench () ])
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let dh_ns = ref None in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] ->
          if has_suffix ~suffix:"x25519/scalarmult" name then dh_ns := Some ns;
          if ns > 1e6 then
            Printf.printf "  %-42s %10.3f ms/op\n" name (ns /. 1e6)
          else if ns > 1e3 then
            Printf.printf "  %-42s %10.3f us/op\n" name (ns /. 1e3)
          else Printf.printf "  %-42s %10.1f ns/op\n" name ns
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    (List.sort compare rows);
  !dh_ns

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

let figure6 () =
  section
    "FIGURE 6 - sensitivity of (m1, m2) to one user's action vs cover story";
  Format.printf "%a" Vuvuzela_attack.Observation.pp_table ();
  let s1, s2 = Vuvuzela_attack.Observation.max_sensitivity () in
  Printf.printf
    "\nmax |dm1| = %d (paper: 2), max |dm2| = %d (paper: 1) -- %s\n" s1 s2
    (if s1 = 2 && s2 = 1 then "MATCHES the paper's table" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8                                                     *)
(* ------------------------------------------------------------------ *)

let privacy_figure ~title ~paper_k curves =
  section title;
  List.iter2
    (fun (c : Vuvuzela_sim.Figures.privacy_curve) paper ->
      Printf.printf "mu=%-8.0f b=%-7.0f supported k=%-8d (paper: ~%d)\n"
        c.Vuvuzela_sim.Figures.mu c.b c.supported_k paper;
      Printf.printf "  %-10s %-10s %-12s\n" "k" "e^eps'" "delta'";
      List.iter
        (fun (k, e, d) -> Printf.printf "  %-10d %-10.3f %-12.3e\n" k e d)
        (List.filteri (fun i _ -> i mod 3 = 0) c.points))
    curves paper_k

let figure7 () =
  privacy_figure
    ~title:
      "FIGURE 7 - eps'/delta' vs rounds, conversation noise (paper: 70K / \
       250K / 500K rounds at eps'=ln2)"
    ~paper_k:[ 70_000; 250_000; 500_000 ]
    (Vuvuzela_sim.Figures.figure7 ())

let figure8 () =
  privacy_figure
    ~title:
      "FIGURE 8 - eps'/delta' vs rounds, dialing noise (paper: 1200 / 3500 \
       / 8000 rounds)"
    ~paper_k:[ 1_200; 3_500; 8_000 ]
    (Vuvuzela_sim.Figures.figure8 ())

(* ------------------------------------------------------------------ *)
(* Figures 9-11                                                        *)
(* ------------------------------------------------------------------ *)

let figure9 () =
  section
    "FIGURE 9 - conversation latency vs online users (paper, mu=300K: 20 s \
     at 10 users, 37 s at 1M, 55 s at 2M)";
  let curves = Vuvuzela_sim.Figures.figure9 () in
  Printf.printf "%-12s" "users";
  List.iter (fun c -> Printf.printf "%14s" c.Vuvuzela_sim.Figures.label) curves;
  print_newline ();
  let xs = List.map fst (List.hd curves).Vuvuzela_sim.Figures.points in
  List.iteri
    (fun i users ->
      Printf.printf "%-12d" users;
      List.iter
        (fun c ->
          Printf.printf "%12.1f s"
            (snd (List.nth c.Vuvuzela_sim.Figures.points i)))
        curves;
      print_newline ())
    xs;
  Printf.printf
    "\ndiscrete-event pipeline (mu=300K): latency / round interval\n";
  List.iter
    (fun (u, lat, itv) -> Printf.printf "  %-10d %8.1f s %8.1f s\n" u lat itv)
    (Vuvuzela_sim.Figures.figure9_des ())

let figure10 () =
  section
    "FIGURE 10 - dialing latency vs online users, mu=13K (paper: 13 s at 10 \
     users, 50 s at 2M)";
  let c = Vuvuzela_sim.Figures.figure10 () in
  List.iter
    (fun (u, l) -> Printf.printf "  %-12d %8.1f s\n" u l)
    c.Vuvuzela_sim.Figures.points

let figure11 () =
  section
    "FIGURE 11 - latency vs chain length, 1M users, mu=300K (paper: ~5 s to \
     ~140 s, quadratic)";
  let points = Vuvuzela_sim.Figures.figure11 () in
  List.iter (fun (s, l) -> Printf.printf "  %d servers: %8.1f s\n" s l) points;
  Printf.printf
    "  quadratic fit R^2 = %.4f (paper: \"scales roughly quadratically\")\n"
    (Vuvuzela_sim.Figures.quadratic_r2 points)

(* ------------------------------------------------------------------ *)
(* Headlines                                                           *)
(* ------------------------------------------------------------------ *)

let headlines dh_ns =
  section "HEADLINE NUMBERS (§1, §8.2, §8.3)";
  let h = Vuvuzela_sim.Figures.headlines () in
  let row name ours paper =
    Printf.printf "  %-44s %14s %14s\n" name ours paper
  in
  row "metric" "ours" "paper";
  row "end-to-end latency, 1M users"
    (Printf.sprintf "%.1f s" h.Vuvuzela_sim.Figures.latency_1m)
    "37 s";
  row "end-to-end latency, 2M users" (Printf.sprintf "%.1f s" h.latency_2m) "55 s";
  row "end-to-end latency, 10 users" (Printf.sprintf "%.1f s" h.latency_10) "20 s";
  row "throughput at 1M users"
    (Printf.sprintf "%.0f msg/s" h.throughput_1m)
    "68,000 msg/s";
  row "crypto lower bound, 2M users (8.2)"
    (Printf.sprintf "%.1f s" h.lower_bound_2m)
    "~28 s";
  row "noise requests per round (3 servers)"
    (Printf.sprintf "%.1fM" (h.noise_requests /. 1e6))
    "1.2M";
  row "server bandwidth at 1M users"
    (Printf.sprintf "%.0f MB/s" (h.server_bandwidth_1m /. 1e6))
    "166 MB/s";
  row "client bandwidth (conv + dialing)"
    (Printf.sprintf "%.1f KB/s" (h.client_bandwidth /. 1e3))
    "~12 KB/s";
  row "invitation drop size, 1M users"
    (Printf.sprintf "%.1f MB" (h.drop_bytes /. 1e6))
    "~7 MB";
  row "client messages per minute"
    (Printf.sprintf "%.1f" h.messages_per_minute)
    "4";
  match dh_ns with
  | Some ns ->
      let ours_rate = 1e9 /. ns in
      let scaled =
        {
          Vuvuzela_sim.Cost_model.paper with
          Vuvuzela_sim.Cost_model.dh_ops_per_sec = ours_rate *. 36.;
        }
      in
      Printf.printf
        "\n  this machine's X25519: %.0f ops/s/core (paper's testbed: \
         340,000 ops/s on 36 cores = %.0f/core);\n"
        ours_rate (340_000. /. 36.);
      Printf.printf
        "  a 36-core server running this OCaml stack would complete a \
         1M-user round in ~%.0f s.\n"
        (Vuvuzela_sim.Cost_model.conv_latency scaled ~users:1_000_000
           ~servers:3
           ~noise:(Vuvuzela_sim.Figures.conv_noise_of 300_000.))
  | None -> ()

(* ------------------------------------------------------------------ *)
(* §6.4 posterior examples                                             *)
(* ------------------------------------------------------------------ *)

let posteriors () =
  section "POSTERIOR BOUNDS (§6.4 worked example)";
  let cases =
    [ (0.5, log 2., 0.667); (0.5, log 3., 0.75); (0.01, log 3., 0.0294) ]
  in
  List.iter
    (fun (prior, eps, paper) ->
      Printf.printf
        "  prior %5.1f%%, eps=%5.3f -> posterior %6.2f%% (paper: %.1f%%)\n"
        (100. *. prior) eps
        (100. *. Bayes.posterior ~prior ~eps)
        (100. *. paper))
    cases

(* ------------------------------------------------------------------ *)
(* Live round measurement                                              *)
(* ------------------------------------------------------------------ *)

let live_round_scaling () =
  section "LIVE IMPLEMENTATION - measured round cost vs batch size";
  Printf.printf
    "  (real crypto end to end; noise deterministic mu=4; 3 servers)\n";
  List.iter
    (fun n_clients ->
      let noise = Laplace.params ~mu:4. ~b:1. in
      let net =
        Network.of_config
          Network.Config.(
            default |> with_seed "bench-live" |> with_noise noise
            |> with_dial_noise (Laplace.params ~mu:1. ~b:1.)
            |> with_noise_mode Noise.Deterministic)
      in
      let clients =
        List.init n_clients (fun i ->
            Network.connect ~seed:(Printf.sprintf "lc%d" i) net)
      in
      let rec pair = function
        | a :: b :: rest ->
            Client.start_conversation a ~peer_pk:(Client.public_key b);
            Client.start_conversation b ~peer_pk:(Client.public_key a);
            pair rest
        | _ -> ()
      in
      pair clients;
      let t0 = Unix.gettimeofday () in
      let rounds = 3 in
      for _ = 1 to rounds do
        ignore (Network.run ~kind:Round.Conversation net)
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int rounds in
      Printf.printf
        "  %4d clients: %8.1f ms/round  (%6.0f exchanges/s sustainable)\n"
        n_clients (1000. *. dt)
        (float_of_int n_clients /. dt))
    [ 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* Parallel round engine                                               *)
(* ------------------------------------------------------------------ *)

let parallel_scaling () =
  section "PARALLEL - multicore round engine (client onions/s vs jobs)";
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  (this host reports %d core(s); round outputs are bit-identical at \
     every job count)\n"
    cores;
  let job_counts = List.sort_uniq compare [ 1; 2; 4; cores ] in
  let n_clients = 48 in
  let baseline = ref None in
  List.iter
    (fun jobs ->
      let noise = Laplace.params ~mu:4. ~b:1. in
      let net =
        Network.of_config
          Network.Config.(
            default |> with_seed "bench-par" |> with_noise noise
            |> with_dial_noise (Laplace.params ~mu:1. ~b:1.)
            |> with_noise_mode Noise.Deterministic |> with_jobs jobs)
      in
      let clients =
        List.init n_clients (fun i ->
            Network.connect ~seed:(Printf.sprintf "pc%d" i) net)
      in
      let rec pair = function
        | a :: b :: rest ->
            Client.start_conversation a ~peer_pk:(Client.public_key b);
            Client.start_conversation b ~peer_pk:(Client.public_key a);
            pair rest
        | _ -> ()
      in
      pair clients;
      ignore (Network.run ~kind:Round.Conversation net) (* warm-up: spin up the domains *);
      let rounds = 3 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        ignore (Network.run ~kind:Round.Conversation net)
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int rounds in
      Network.shutdown net;
      let onions_s = float_of_int n_clients /. dt in
      let speedup =
        match !baseline with
        | None ->
            baseline := Some dt;
            1.
        | Some b -> b /. dt
      in
      Printf.printf
        "  jobs=%-3d %8.1f ms/round  %8.0f onions/s  speedup %.2fx\n" jobs
        (1000. *. dt) onions_s speedup)
    job_counts

(* ------------------------------------------------------------------ *)
(* Telemetry: machine-readable per-stage latency export                *)
(* ------------------------------------------------------------------ *)

(* Instrumented rounds at jobs ∈ {1, 2, 4}; the registry's stage
   histograms become BENCH_round_stages.json — per-stage p50/p95/p99 and
   wire bytes per round — so perf regressions are diffable run-to-run
   without scraping stdout. *)
let round_stage_export () =
  section "TELEMETRY - per-stage round latency (writes BENCH_round_stages.json)";
  let module T = Vuvuzela_telemetry in
  let rounds = 8 and n_clients = 24 in
  let per_jobs jobs =
    let tel = T.Telemetry.create () in
    let net =
      Network.of_config
        Network.Config.(
          default |> with_seed "bench-stages"
          |> with_noise (Laplace.params ~mu:4. ~b:1.)
          |> with_dial_noise (Laplace.params ~mu:1. ~b:1.)
          |> with_noise_mode Noise.Deterministic |> with_jobs jobs
          |> with_telemetry tel)
    in
    let clients =
      List.init n_clients (fun i ->
          Network.connect ~seed:(Printf.sprintf "sc%d" i) net)
    in
    let rec pair = function
      | a :: b :: rest ->
          Client.start_conversation a ~peer_pk:(Client.public_key b);
          Client.start_conversation b ~peer_pk:(Client.public_key a);
          pair rest
      | _ -> ()
    in
    pair clients;
    let reports = Network.run_rounds net rounds in
    Network.shutdown net;
    let reg = T.Telemetry.metrics tel in
    let wire_per_round =
      List.fold_left (fun acc r -> acc + r.Network.wire_bytes) 0 reports
      / rounds
    in
    Printf.printf "  jobs=%-3d %8d B/round on the wire;" jobs wire_per_round;
    let stages =
      List.map
        (fun stage ->
          let h =
            T.Metrics.histogram reg ~labels:[ ("stage", stage) ]
              "vuvuzela_stage_ms"
          in
          if stage = "peel" || stage = "reseal" then
            Printf.printf "  %s p95 %.2f ms" stage (T.Metrics.quantile h 0.95);
          T.Json.Obj
            [
              ("stage", T.Json.Str stage);
              ("count", T.Json.Num (float_of_int (T.Metrics.hist_count h)));
              ("p50_ms", T.Json.Num (T.Metrics.quantile h 0.50));
              ("p95_ms", T.Json.Num (T.Metrics.quantile h 0.95));
              ("p99_ms", T.Json.Num (T.Metrics.quantile h 0.99));
            ])
        T.Telemetry.server_stages
    in
    print_newline ();
    T.Json.Obj
      [
        ("jobs", T.Json.Num (float_of_int jobs));
        ("wire_bytes_per_round", T.Json.Num (float_of_int wire_per_round));
        ("stages", T.Json.List stages);
      ]
  in
  let doc =
    T.Json.Obj
      [
        ("benchmark", T.Json.Str "round-stages");
        ("servers", T.Json.Num 3.);
        ("clients", T.Json.Num (float_of_int n_clients));
        ("rounds_per_job_count", T.Json.Num (float_of_int rounds));
        ("job_counts", T.Json.List (List.map per_jobs [ 1; 2; 4 ]));
      ]
  in
  let oc = open_out "BENCH_round_stages.json" in
  output_string oc (T.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_round_stages.json\n"

(* ------------------------------------------------------------------ *)
(* Crypto: 51-bit field rewrite vs the retained seed implementation    *)
(* ------------------------------------------------------------------ *)

(* Throughput of the rewritten X25519 (5×51-bit limbs) against the
   retained seed ladder (Curve25519_ref, 16×16-bit limbs), AEAD seal/open
   throughput, the chunked-vs-per-item pool dispatch cost, and the
   end-to-end round cost at jobs ∈ {1, 2, 4} plus a pipelined run —
   written to BENCH_crypto.json so the numbers are diffable run-to-run.
   The host core count is recorded alongside: on a 1-core container the
   jobs > 1 rows measure scheduling overhead, not speedup. *)
let crypto_bench () =
  section
    "CRYPTO - 51-bit field + unrolled chacha vs seed (writes \
     BENCH_crypto.json)";
  let module T = Vuvuzela_telemetry in
  let rng = Drbg.of_string "bench-crypto" in
  let sk, _pk = Drbg.keypair ~rng () in
  let _peer_sk, peer_pk = Drbg.keypair ~rng () in
  let ops_per_sec ?(min_s = 0.4) f =
    for _ = 1 to 16 do
      f ()
    done;
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    let elapsed = ref 0. in
    while !elapsed < min_s do
      for _ = 1 to 32 do
        f ()
      done;
      n := !n + 32;
      elapsed := Unix.gettimeofday () -. t0
    done;
    float_of_int !n /. !elapsed
  in
  let x_new =
    ops_per_sec (fun () ->
        ignore (Curve25519.scalarmult ~scalar:sk ~point:peer_pk))
  in
  let x_ref =
    ops_per_sec (fun () ->
        ignore (Curve25519_ref.scalarmult ~scalar:sk ~point:peer_pk))
  in
  let x_base = ops_per_sec (fun () -> ignore (Curve25519.scalarmult_base sk)) in
  let speedup = x_new /. x_ref in
  Printf.printf "  x25519 (51-bit limbs)   %10.0f ops/s\n" x_new;
  Printf.printf "  x25519 (seed, 16-bit)   %10.0f ops/s\n" x_ref;
  Printf.printf "  x25519 fixed-base       %10.0f ops/s\n" x_base;
  Printf.printf "  speedup %.2fx %s\n" speedup
    (if speedup >= 3. then "(meets the >=3x target)"
     else "(BELOW the 3x target)");
  let key = Drbg.generate rng Aead.key_len in
  let nonce = Aead.nonce_of ~domain:7 ~counter:1 in
  let msg = Drbg.generate rng 1024 in
  let sealed = Aead.seal ~key ~nonce msg in
  let seal_ops = ops_per_sec (fun () -> ignore (Aead.seal ~key ~nonce msg)) in
  let open_ops =
    ops_per_sec (fun () -> ignore (Aead.open_ ~key ~nonce sealed))
  in
  let mb ops = ops *. 1024. /. 1e6 in
  Printf.printf "  aead seal (1 KiB)       %10.1f MB/s\n" (mb seal_ops);
  Printf.printf "  aead open (1 KiB)       %10.1f MB/s\n" (mb open_ops);
  (* In-place _into path: what the server peel/reseal loops actually
     run — no plaintext/ciphertext allocations at all. *)
  let scratch = Bytes.create (1024 + Aead.tag_len) in
  let seal_into_ops =
    ops_per_sec (fun () ->
        Bytes.blit msg 0 scratch 0 1024;
        Aead.seal_into ~key ~nonce ~src:scratch ~src_off:0 ~len:1024
          ~dst:scratch ~dst_off:0 ())
  in
  Printf.printf "  aead seal_into (1 KiB)  %10.1f MB/s\n" (mb seal_into_ops);
  (* Raw ChaCha20 stream, unrolled fast path vs the retained seed
     oracle, on a 16 KiB buffer. *)
  let big = Drbg.generate rng 16384 in
  let mb16 ops = ops *. 16384. /. 1e6 in
  let chacha_fast =
    ops_per_sec (fun () -> ignore (Chacha20.encrypt ~key ~nonce big))
  in
  let chacha_ref =
    ops_per_sec ~min_s:0.3 (fun () ->
        ignore (Chacha20_ref.encrypt ~key ~nonce big))
  in
  Printf.printf "  chacha20 (16 KiB)       %10.1f MB/s (unrolled)\n"
    (mb16 chacha_fast);
  Printf.printf "  chacha20 (16 KiB, seed) %10.1f MB/s (%.2fx)\n"
    (mb16 chacha_ref)
    (chacha_fast /. chacha_ref);
  (* End-to-end conversation rounds (real crypto, 3 servers, 24 clients)
     at jobs 1 and 4 — the consumer-visible effect of the field rewrite. *)
  let round_ms ?pipeline_chunk jobs =
    let net =
      Network.of_config
        Network.Config.(
          default |> with_seed "bench-crypto-round"
          |> with_noise (Laplace.params ~mu:4. ~b:1.)
          |> with_dial_noise (Laplace.params ~mu:1. ~b:1.)
          |> with_noise_mode Noise.Deterministic |> with_jobs jobs
          |>
          match pipeline_chunk with
          | None -> Fun.id
          | Some chunk -> with_pipeline ~chunk true)
    in
    let clients =
      List.init 24 (fun i ->
          Network.connect ~seed:(Printf.sprintf "cc%d" i) net)
    in
    let rec pair = function
      | a :: b :: rest ->
          Client.start_conversation a ~peer_pk:(Client.public_key b);
          Client.start_conversation b ~peer_pk:(Client.public_key a);
          pair rest
      | _ -> ()
    in
    pair clients;
    ignore (Network.run ~kind:Round.Conversation net) (* warm-up *);
    let rounds = 4 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to rounds do
      ignore (Network.run ~kind:Round.Conversation net)
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int rounds in
    Network.shutdown net;
    Printf.printf "  round (24 clients)      %10.1f ms at jobs=%d%s\n"
      (1000. *. dt) jobs
      (match pipeline_chunk with
      | None -> ""
      | Some c -> Printf.sprintf " pipelined chunk=%d" c);
    T.Json.Obj
      ([
         ("jobs", T.Json.Num (float_of_int jobs));
         ("ms_per_round", T.Json.Num (1000. *. dt));
       ]
      @
      match pipeline_chunk with
      | None -> []
      | Some c -> [ ("pipeline_chunk", T.Json.Num (float_of_int c)) ])
  in
  let rounds =
    (* Bound one by one: list elements evaluate right-to-left, which
       would print the rows bottom-up. *)
    let r1 = round_ms 1 in
    let r2 = round_ms 2 in
    let r4 = round_ms 4 in
    let rp = round_ms ~pipeline_chunk:16 4 in
    [ r1; r2; r4; rp ]
  in
  (* Pool dispatch A/B: the same per-onion-sized crypto job fanned out
     chunked (one task per domain) vs per-item (one queued closure per
     element).  The gap is pure dispatch overhead. *)
  let module Pool = Vuvuzela_parallel.Pool in
  let pool_jobs = min 4 (Pool.default_jobs ()) in
  let p = Pool.create ~jobs:pool_jobs in
  let items = Array.init 256 (fun i -> Drbg.generate rng (240 + (i mod 16))) in
  let work _ b = Sha256.digest b in
  let chunked_ops =
    ops_per_sec ~min_s:0.3 (fun () -> ignore (Pool.mapi_array p work items))
  in
  let per_item_ops =
    ops_per_sec ~min_s:0.3 (fun () ->
        ignore (Pool.mapi_array_per_item p work items))
  in
  Pool.shutdown p;
  Printf.printf
    "  pool 256x sha256: chunked %8.0f batches/s, per-item %8.0f batches/s \
     (%.2fx) at jobs=%d\n"
    chunked_ops per_item_ops (chunked_ops /. per_item_ops) pool_jobs;
  let doc =
    T.Json.Obj
      [
        ("benchmark", T.Json.Str "crypto");
        ("schema", T.Json.Num 1.);
        ("host_cores", T.Json.Num (float_of_int (Vuvuzela_parallel.Pool.default_jobs ())));
        ( "x25519",
          T.Json.Obj
            [
              ("ops_per_sec", T.Json.Num x_new);
              ("seed_ops_per_sec", T.Json.Num x_ref);
              ("fixed_base_ops_per_sec", T.Json.Num x_base);
              ("speedup_vs_seed", T.Json.Num speedup);
            ] );
        ( "aead_1kib",
          T.Json.Obj
            [
              ("seal_mb_per_sec", T.Json.Num (mb seal_ops));
              ("open_mb_per_sec", T.Json.Num (mb open_ops));
              ("seal_into_mb_per_sec", T.Json.Num (mb seal_into_ops));
            ] );
        ( "chacha20_16kib",
          T.Json.Obj
            [
              ("fast_mb_per_sec", T.Json.Num (mb16 chacha_fast));
              ("seed_mb_per_sec", T.Json.Num (mb16 chacha_ref));
              ("speedup_vs_seed", T.Json.Num (chacha_fast /. chacha_ref));
            ] );
        ( "pool_dispatch_256x_sha256",
          T.Json.Obj
            [
              ("jobs", T.Json.Num (float_of_int pool_jobs));
              ("chunked_batches_per_sec", T.Json.Num chunked_ops);
              ("per_item_batches_per_sec", T.Json.Num per_item_ops);
              ( "chunked_speedup_vs_per_item",
                T.Json.Num (chunked_ops /. per_item_ops) );
            ] );
        ("round", T.Json.List rounds);
      ]
  in
  let oc = open_out "BENCH_crypto.json" in
  output_string oc (T.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_crypto.json\n"

(* ------------------------------------------------------------------ *)
(* Faults: retry overhead under the round supervisor                   *)
(* ------------------------------------------------------------------ *)

(* What a failed-and-retried round costs: crashes are planted at every
   even round number, and since each retry consumes the next (odd)
   number, every supervised round's first attempt crashes and its retry
   succeeds — each round does the client build + chain trip twice, with
   fresh onions and redrawn noise.  The interesting number is the
   per-round overhead against a fault-free run of the same deployment,
   at jobs ∈ {1, 4} (expected ≈ 2x). *)
let faults_overhead () =
  section "FAULTS - round supervisor retry overhead (every round retried once)";
  let n_clients = 24 and rounds = 6 in
  let run ~jobs ~with_faults =
    let fault_plan =
      if with_faults then
        Some
          (List.init rounds (fun i ->
               {
                 Vuvuzela_faults.Fault.round = 2 * (i + 1);
                 server = 1;
                 kind = Vuvuzela_faults.Fault.Crash;
               }))
      else None
    in
    let net =
      Network.of_config
        Network.Config.(
          default |> with_seed "bench-faults"
          |> with_noise (Laplace.params ~mu:4. ~b:1.)
          |> with_dial_noise (Laplace.params ~mu:1. ~b:1.)
          |> with_noise_mode Noise.Deterministic |> with_jobs jobs
          |> with_max_retries 2
          |>
          match fault_plan with
          | None -> Fun.id
          | Some plan -> with_fault_plan plan)
    in
    let clients =
      List.init n_clients (fun i ->
          Network.connect ~seed:(Printf.sprintf "fc%d" i) net)
    in
    let rec pair = function
      | a :: b :: rest ->
          Client.start_conversation a ~peer_pk:(Client.public_key b);
          Client.start_conversation b ~peer_pk:(Client.public_key a);
          pair rest
      | _ -> ()
    in
    pair clients;
    ignore (Network.run ~kind:Round.Conversation net) (* warm-up, and lands on round 1 *);
    let t0 = Unix.gettimeofday () in
    let reports = Network.run_rounds net rounds in
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int rounds in
    Network.shutdown net;
    let retried =
      List.length (List.filter (fun r -> r.Network.attempts > 1) reports)
    in
    (1000. *. dt, retried)
  in
  List.iter
    (fun jobs ->
      let clean_ms, _ = run ~jobs ~with_faults:false in
      let faulty_ms, retried = run ~jobs ~with_faults:true in
      Printf.printf
        "  jobs=%-3d clean %7.1f ms/round   faulted %7.1f ms/round \
         (%d/%d rounds retried, overhead %.2fx)\n"
        jobs clean_ms faulty_ms retried rounds (faulty_ms /. clean_ms))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Ablations: what each design element buys                            *)
(* ------------------------------------------------------------------ *)

let ablation_noise () =
  section "ABLATION - the optimal disclosure attack with and without noise";
  Printf.printf
    "  adversary posterior (prior 50%%) that a specific pair is talking, \
     after k rounds:\n";
  Printf.printf "  %-28s %8s %8s %8s\n" "configuration" "k=5" "k=20" "k=80";
  let run noise talking k seed =
    (* mean over 10 trials to smooth the likelihood random walk *)
    let total = ref 0. in
    for trial = 1 to 10 do
      let rng = Drbg.of_string (Printf.sprintf "abl-%s-%d-%d" seed k trial) in
      total :=
        !total
        +. (Vuvuzela_attack.Disclosure.model_attack ~rng ~noise ~talking
              ~rounds:k ~prior:0.5 ())
             .Vuvuzela_attack.Disclosure.posterior
    done;
    !total /. 10.
  in
  let row name noise =
    Printf.printf "  %-28s %7.1f%% %7.1f%% %7.1f%%\n" name
      (100. *. run noise true 5 name)
      (100. *. run noise true 20 name)
      (100. *. run noise true 80 name)
  in
  row "no noise (mixnet only)" (Laplace.params ~mu:0.01 ~b:0.01);
  row "mu=50  (paper ratio)" (Laplace.params ~mu:50. ~b:(50. /. 21.7));
  row "mu=200 (paper ratio)" (Laplace.params ~mu:200. ~b:(200. /. 21.7));
  row "mu=800 (paper ratio)" (Laplace.params ~mu:800. ~b:(800. /. 21.7));
  Printf.printf
    "  -> without cover traffic the pair is identified in a handful of \
     rounds;\n     noise at the paper's µ/b ratio pins the posterior near \
     the prior.\n"

let ablation_m_tuning () =
  section "ABLATION - invitation-drop count m (§5.4 tradeoff)";
  let users = 1_000_000 and dial_fraction = 0.05 in
  let dial_noise = Vuvuzela_sim.Figures.dial_noise_13k in
  Printf.printf "  1M users, 5%% dialing, µ=13K per server (3 servers):\n";
  Printf.printf "  %-6s %18s %22s\n" "m" "client download" "server noise load";
  List.iter
    (fun m ->
      let drop =
        Vuvuzela_sim.Cost_model.invitation_drop_bytes ~users ~servers:3 ~m
          ~dial_fraction ~dial_noise
      in
      let noise_total = float_of_int (3 * m) *. dial_noise.Laplace.mu in
      Printf.printf "  %-6d %12.2f MB %18.0f invitations\n" m (drop /. 1e6)
        noise_total)
    [ 1; 2; 4; 8; 16 ];
  let tuned =
    Vuvuzela_dp.Noise.tune_drop_count ~users ~dial_fraction dial_noise
  in
  Printf.printf
    "  §5.4 rule m = n·f/µ chooses m = %d (real ≈ noise per drop).\n" tuned

let baseline_comparison () =
  section
    "BASELINES - Vuvuzela vs the O(n^2) prior systems (\"about 100x higher \
     than prior systems\", §1)";
  let noise = Vuvuzela_sim.Figures.conv_noise_of 300_000. in
  Printf.printf "  round latency on the paper's hardware constants:\n";
  Printf.printf "  %-12s %14s %14s %14s\n" "users" "vuvuzela" "broadcast" "PIR";
  List.iter
    (fun (r : Vuvuzela_sim.Baselines.comparison_row) ->
      let f s = if s > 3600. then Printf.sprintf "%.1f h" (s /. 3600.) else Printf.sprintf "%.1f s" s in
      Printf.printf "  %-12d %14s %14s %14s\n" r.users (f r.vuvuzela_s)
        (f r.broadcast_s) (f r.pir_s))
    (Vuvuzela_sim.Baselines.comparison_table ~noise
       [ 1_000; 5_000; 50_000; 500_000; 2_000_000 ]);
  let budget = 60. in
  let cap f = Vuvuzela_sim.Baselines.max_users ~budget f in
  let bc = cap (fun n -> Vuvuzela_sim.Baselines.broadcast_round_latency Vuvuzela_sim.Cost_model.paper ~users:n ~msg_bytes:256) in
  let pir = cap (fun n -> Vuvuzela_sim.Baselines.pir_round_latency ~users:n ~msg_bytes:256) in
  let vuv = cap (fun n -> Vuvuzela_sim.Baselines.vuvuzela_round_latency Vuvuzela_sim.Cost_model.paper ~users:n ~noise) in
  Printf.printf
    "\n  users supportable within a %.0f s round: broadcast %d, PIR %d, \
     vuvuzela %d  (~%.0fx)\n"
    budget bc pir vuv
    (float_of_int vuv /. float_of_int (max bc pir));
  Printf.printf
    "  (paper: Dissent ~5K users / Riposte hundreds of msgs/s vs Vuvuzela \
     2M users)\n"

let workload_summary () =
  section "WORKLOAD - functional implementation under the §8.1 mix (scaled)";
  let s =
    Vuvuzela_sim.Workload.run ~seed:"bench-workload"
      ~profile:(Vuvuzela_sim.Workload.paper_mix ~users:10)
      ~rounds:15 ()
  in
  Format.printf "  paper mix, 10 users, 15 rounds: %a@."
    Vuvuzela_sim.Workload.pp_summary s;
  let st =
    Vuvuzela_sim.Workload.run ~seed:"bench-stress"
      ~profile:(Vuvuzela_sim.Workload.stress ~users:10)
      ~rounds:20 ()
  in
  Format.printf "  stress mix (churn+outages),   20 rounds: %a@."
    Vuvuzela_sim.Workload.pp_summary st

(* ------------------------------------------------------------------ *)
(* Transport: in-process chain vs real loopback-TCP daemons            *)
(* ------------------------------------------------------------------ *)

(* What the multi-process deployment costs over function calls: the same
   seeded rounds through 3 [vuvuzela-server] daemons on 127.0.0.1 —
   framing, syscalls and loopback hops included — at jobs ∈ {1, 4},
   plus how long the supervisor takes to recover from the middle server
   being SIGKILLed and restarted (the reconnect storm).  Daemons are
   separate processes via [create_process] (never [fork]: this process
   has spawned domains by now). *)
let transport_bench () =
  section "TRANSPORT - in-process vs loopback TCP (writes BENCH_transport.json)";
  let module T = Vuvuzela_telemetry in
  let module Addr = Vuvuzela_transport.Addr in
  let sockets_allowed () =
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> false
    | fd -> (
        match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) with
        | () -> Unix.close fd; true
        | exception Unix.Unix_error _ -> Unix.close fd; false)
  in
  let server_bin =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/server_main.exe"
  in
  if not (sockets_allowed ()) then
    Printf.printf "  skipped: sandbox forbids loopback sockets\n"
  else if not (Sys.file_exists server_bin) then
    Printf.printf "  skipped: %s not built (run dune build first)\n" server_bin
  else begin
    let n_clients = 24 and rounds = 6 in
    let noise = Laplace.params ~mu:4. ~b:1. in
    let dial_noise = Laplace.params ~mu:1. ~b:1. in
    let free_port () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      Unix.close fd;
      port
    in
    let spawn_daemon ~jobs ~seed ~ports index =
      let args =
        [| server_bin; "--listen"; Printf.sprintf ":%d" ports.(index);
           "--index"; string_of_int index; "--chain-len"; "3";
           "--seed"; seed; "--mu"; "4"; "--noise-b"; "1";
           "--dial-mu"; "1"; "--dial-b"; "1"; "--deterministic-noise";
           "--jobs"; string_of_int jobs; "--quiet" |]
      in
      let args =
        if index = 2 then args
        else
          Array.append args
            [| "--next"; Printf.sprintf ":%d" ports.(index + 1) |]
      in
      Unix.create_process server_bin args Unix.stdin Unix.stdout Unix.stderr
    in
    let stop_pid pid =
      let deadline = Unix.gettimeofday () +. 3.0 in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid)
            end
            else begin
              Unix.sleepf 0.02;
              wait ()
            end
        | _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      wait ()
    in
    let connect_clients net =
      let clients =
        List.init n_clients (fun i ->
            Network.connect ~seed:(Printf.sprintf "tc%d" i) net)
      in
      let rec pair = function
        | a :: b :: rest ->
            Client.start_conversation a ~peer_pk:(Client.public_key b);
            Client.start_conversation b ~peer_pk:(Client.public_key a);
            pair rest
        | _ -> ()
      in
      pair clients
    in
    (* ms/round and wire MB/s over [rounds] supervised rounds *)
    let measure net =
      ignore (Network.run ~kind:Round.Conversation net) (* warm-up *);
      let t0 = Unix.gettimeofday () in
      let reports = Network.run_rounds net rounds in
      let dt = Unix.gettimeofday () -. t0 in
      let wire =
        List.fold_left (fun acc r -> acc + r.Network.wire_bytes) 0 reports
      in
      (1000. *. dt /. float_of_int rounds, float_of_int wire /. dt /. 1e6)
    in
    let in_process ~jobs =
      let net =
        Network.of_config
          Network.Config.(
            default |> with_seed "bench-tcp" |> with_noise noise
            |> with_dial_noise dial_noise
            |> with_noise_mode Noise.Deterministic |> with_jobs jobs)
      in
      connect_clients net;
      let r = measure net in
      Network.shutdown net;
      r
    in
    let over_tcp ~jobs f =
      let seed = "bench-tcp" in
      let ports = Array.init 3 (fun _ -> free_port ()) in
      let pids = ref (List.map (spawn_daemon ~jobs ~seed ~ports) [ 2; 1; 0 ]) in
      Fun.protect
        ~finally:(fun () -> List.iter stop_pid !pids)
        (fun () ->
          match
            Network.of_config_tcp
              Network.Config.(
                default |> with_noise noise |> with_dial_noise dial_noise
                |> with_round_deadline_ms 60_000.
                |> with_handshake_timeout_ms 30_000.
                |> with_max_retries 4)
              ~addr:(Addr.loopback ~port:ports.(0))
          with
          | Error e -> failwith ("of_config_tcp: " ^ e)
          | Ok net ->
              connect_clients net;
              let r = f ~seed ~ports ~pids net in
              Network.shutdown net;
              r)
    in
    let per_jobs jobs =
      let local_ms, local_mb = in_process ~jobs in
      let tcp_ms, tcp_mb =
        over_tcp ~jobs (fun ~seed:_ ~ports:_ ~pids:_ net -> measure net)
      in
      Printf.printf
        "  jobs=%-3d in-process %7.1f ms/round %6.2f MB/s   loopback-TCP \
         %7.1f ms/round %6.2f MB/s  (%.2fx)\n"
        jobs local_ms local_mb tcp_ms tcp_mb (tcp_ms /. local_ms);
      T.Json.Obj
        [
          ("jobs", T.Json.Num (float_of_int jobs));
          ("in_process_ms_per_round", T.Json.Num local_ms);
          ("in_process_wire_mb_per_sec", T.Json.Num local_mb);
          ("loopback_tcp_ms_per_round", T.Json.Num tcp_ms);
          ("loopback_tcp_wire_mb_per_sec", T.Json.Num tcp_mb);
          ("tcp_overhead_x", T.Json.Num (tcp_ms /. local_ms));
        ]
    in
    let job_rows = List.map per_jobs [ 1; 4 ] in
    (* Reconnect storm: SIGKILL the middle daemon, restart it, and time
       the first supervised round completed after the kill. *)
    let recovery_ms =
      over_tcp ~jobs:1 (fun ~seed ~ports ~pids net ->
          ignore (Network.run ~kind:Round.Conversation net);
          let victim = List.nth !pids 1 in
          Unix.kill victim Sys.sigkill;
          ignore (Unix.waitpid [] victim);
          let t0 = Unix.gettimeofday () in
          pids :=
            List.mapi
              (fun i pid ->
                if i = 1 then spawn_daemon ~jobs:1 ~seed ~ports 1 else pid)
              !pids;
          let r = Network.run ~kind:Round.Conversation net in
          let dt = 1000. *. (Unix.gettimeofday () -. t0) in
          if r.Network.failure <> None then
            failwith "reconnect storm: round did not recover";
          Printf.printf
            "  reconnect storm: middle server killed + restarted, next round \
             completed in %.0f ms (%d attempt(s))\n"
            dt r.Network.attempts;
          dt)
    in
    let doc =
      T.Json.Obj
        [
          ("benchmark", T.Json.Str "transport");
          ("schema", T.Json.Num 1.);
          ("host_cores", T.Json.Num (float_of_int (Vuvuzela_parallel.Pool.default_jobs ())));
          ("servers", T.Json.Num 3.);
          ("clients", T.Json.Num (float_of_int n_clients));
          ("rounds_per_config", T.Json.Num (float_of_int rounds));
          ("job_counts", T.Json.List job_rows);
          ("reconnect_recovery_ms", T.Json.Num recovery_ms);
        ]
    in
    let oc = open_out "BENCH_transport.json" in
    output_string oc (T.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  wrote BENCH_transport.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Churn: rounds over emulated WAN links, flap rates, reconnect storm  *)
(* ------------------------------------------------------------------ *)

(* What the WAN costs: the same loopback-TCP deployment with every link
   behind the deterministic shaper — rounds/sec at ~50 ms and ~100 ms
   emulated RTT per link at jobs ∈ {1, 4}; how round latency degrades
   as the middle server's upstream link flaps more often (the daemon
   outbox + coordinator flap grace absorbing each outage without a
   retry); and the reconnect-storm recovery time with latency applied. *)
let churn_bench () =
  section "CHURN - emulated WAN links and flap rates (writes BENCH_churn.json)";
  let module T = Vuvuzela_telemetry in
  let module Addr = Vuvuzela_transport.Addr in
  let module Shaper = Vuvuzela_transport.Shaper in
  let sockets_allowed () =
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> false
    | fd -> (
        match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) with
        | () -> Unix.close fd; true
        | exception Unix.Unix_error _ -> Unix.close fd; false)
  in
  let server_bin =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/server_main.exe"
  in
  if not (sockets_allowed ()) then
    Printf.printf "  skipped: sandbox forbids loopback sockets\n"
  else if not (Sys.file_exists server_bin) then
    Printf.printf "  skipped: %s not built (run dune build first)\n" server_bin
  else begin
    let n_clients = 16 and rounds = 4 in
    let noise = Laplace.params ~mu:4. ~b:1. in
    let dial_noise = Laplace.params ~mu:1. ~b:1. in
    let free_port () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      Unix.close fd;
      port
    in
    let spawn_daemon ~jobs ~seed ~ports ?link_latency ?fault_plan index =
      let args =
        [| server_bin; "--listen"; Printf.sprintf ":%d" ports.(index);
           "--index"; string_of_int index; "--chain-len"; "3";
           "--seed"; seed; "--mu"; "4"; "--noise-b"; "1";
           "--dial-mu"; "1"; "--dial-b"; "1"; "--deterministic-noise";
           "--jobs"; string_of_int jobs; "--flap-grace-ms"; "5000";
           "--quiet" |]
      in
      let args =
        if index = 2 then args
        else
          Array.append args
            [| "--next"; Printf.sprintf ":%d" ports.(index + 1) |]
      in
      let args =
        match link_latency with
        | None -> args
        | Some lat -> Array.append args [| "--link-latency"; lat |]
      in
      let args =
        match fault_plan with
        | Some (j, plan) when j = index ->
            Array.append args [| "--fault-plan"; plan |]
        | _ -> args
      in
      Unix.create_process server_bin args Unix.stdin Unix.stdout Unix.stderr
    in
    let stop_pid pid =
      let deadline = Unix.gettimeofday () +. 3.0 in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid)
            end
            else begin
              Unix.sleepf 0.02;
              wait ()
            end
        | _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      wait ()
    in
    let connect_clients net =
      let clients =
        List.init n_clients (fun i ->
            Network.connect ~seed:(Printf.sprintf "cc%d" i) net)
      in
      let rec pair = function
        | a :: b :: rest ->
            Client.start_conversation a ~peer_pk:(Client.public_key b);
            Client.start_conversation b ~peer_pk:(Client.public_key a);
            pair rest
        | _ -> ()
      in
      pair clients
    in
    (* ms/round, total attempts over [rounds] measured rounds (after one
       warm-up round — which is also where round-1 faults land). *)
    let measure net =
      ignore (Network.run ~kind:Round.Conversation net);
      let t0 = Unix.gettimeofday () in
      let reports = Network.run_rounds net rounds in
      let dt = Unix.gettimeofday () -. t0 in
      (match Network.failures_of reports with
      | [] -> ()
      | st :: _ ->
          failwith
            (Format.asprintf "churn bench round failed: %a" Rpc.pp_status st));
      let attempts =
        List.fold_left (fun n r -> n + r.Network.attempts) 0 reports
      in
      (1000. *. dt /. float_of_int rounds, attempts)
    in
    let over_tcp ~jobs ?link_latency ?fault_plan f =
      let seed = "bench-churn" in
      let ports = Array.init 3 (fun _ -> free_port ()) in
      let pids =
        ref
          (List.map
             (spawn_daemon ~jobs ~seed ~ports ?link_latency ?fault_plan)
             [ 2; 1; 0 ])
      in
      Fun.protect
        ~finally:(fun () -> List.iter stop_pid !pids)
        (fun () ->
          let cfg =
            Network.Config.(
              default |> with_noise noise |> with_dial_noise dial_noise
              |> with_round_deadline_ms 60_000.
              |> with_handshake_timeout_ms 30_000.
              |> with_max_retries 4 |> with_flap_grace_ms 5_000.)
          in
          let cfg =
            match link_latency with
            | None -> cfg
            | Some lat -> (
                match Shaper.parse lat with
                | Ok s ->
                    Network.Config.with_link
                      (Shaper.with_seed "bench-churn-coord" s)
                      cfg
                | Error e -> failwith ("--link-latency " ^ lat ^ ": " ^ e))
          in
          match
            Network.of_config_tcp cfg ~addr:(Addr.loopback ~port:ports.(0))
          with
          | Error e -> failwith ("of_config_tcp: " ^ e)
          | Ok net ->
              connect_clients net;
              let r = f ~seed ~ports ~pids net in
              Network.shutdown net;
              r)
    in
    (* Rounds/sec with every link (daemon hops and the coordinator's)
       behind an emulated one-way latency: 25 ms ≈ 50 ms RTT per link,
       50 ms ≈ 100 ms RTT per link. *)
    let wan_rows =
      List.concat_map
        (fun latency_ms ->
          List.map
            (fun jobs ->
              let ms, _ =
                over_tcp ~jobs
                  ~link_latency:(string_of_int latency_ms)
                  (fun ~seed:_ ~ports:_ ~pids:_ net -> measure net)
              in
              Printf.printf
                "  link %2d ms (~%3d ms RTT) jobs=%-3d %7.1f ms/round  %5.2f \
                 rounds/sec\n"
                latency_ms (2 * latency_ms) jobs ms (1000. /. ms);
              T.Json.Obj
                [
                  ("link_latency_ms", T.Json.Num (float_of_int latency_ms));
                  ("approx_rtt_ms", T.Json.Num (float_of_int (2 * latency_ms)));
                  ("jobs", T.Json.Num (float_of_int jobs));
                  ("ms_per_round", T.Json.Num ms);
                  ("rounds_per_sec", T.Json.Num (1000. /. ms));
                ])
            [ 1; 4 ])
        [ 25; 50 ]
    in
    (* Round latency vs flap rate: the middle server's upstream link
       flaps in 0 / 1 / 2 / all 4 of the measured rounds; the outbox +
       flap grace must absorb every outage without a retry, so attempts
       stays at one per round while ms/round climbs. *)
    let flap_rows =
      List.map
        (fun flaps ->
          let plan =
            if flaps = 0 then None
            else Some (1, Printf.sprintf "flap(10)@2:1x%d" flaps)
          in
          let ms, attempts =
            over_tcp ~jobs:1 ?fault_plan:plan
              (fun ~seed:_ ~ports:_ ~pids:_ net -> measure net)
          in
          Printf.printf
            "  flaps=%d/%d rounds: %7.1f ms/round, %d attempt(s) total\n"
            flaps rounds ms attempts;
          T.Json.Obj
            [
              ("flapped_rounds", T.Json.Num (float_of_int flaps));
              ("measured_rounds", T.Json.Num (float_of_int rounds));
              ("ms_per_round", T.Json.Num ms);
              ("total_attempts", T.Json.Num (float_of_int attempts));
            ])
        [ 0; 1; 2; 4 ]
    in
    (* Reconnect storm under emulated latency: SIGKILL the middle
       daemon, restart it, time the first recovered round. *)
    let recovery_ms =
      over_tcp ~jobs:1 ~link_latency:"25"
        (fun ~seed ~ports ~pids net ->
          ignore (Network.run ~kind:Round.Conversation net);
          let victim = List.nth !pids 1 in
          Unix.kill victim Sys.sigkill;
          ignore (Unix.waitpid [] victim);
          let t0 = Unix.gettimeofday () in
          pids :=
            List.mapi
              (fun i pid ->
                if i = 1 then
                  spawn_daemon ~jobs:1 ~seed ~ports ~link_latency:"25" 1
                else pid)
              !pids;
          let r = Network.run ~kind:Round.Conversation net in
          let dt = 1000. *. (Unix.gettimeofday () -. t0) in
          if r.Network.failure <> None then
            failwith "churn reconnect storm: round did not recover";
          Printf.printf
            "  reconnect storm at 25 ms links: recovered in %.0f ms (%d \
             attempt(s))\n"
            dt r.Network.attempts;
          dt)
    in
    let doc =
      T.Json.Obj
        [
          ("benchmark", T.Json.Str "churn");
          ("schema", T.Json.Num 1.);
          ("host_cores", T.Json.Num (float_of_int (Vuvuzela_parallel.Pool.default_jobs ())));
          ("servers", T.Json.Num 3.);
          ("clients", T.Json.Num (float_of_int n_clients));
          ("rounds_per_config", T.Json.Num (float_of_int rounds));
          ("wan_rows", T.Json.List wan_rows);
          ("flap_rows", T.Json.List flap_rows);
          ("reconnect_recovery_ms", T.Json.Num recovery_ms);
        ]
    in
    let oc = open_out "BENCH_churn.json" in
    output_string oc (T.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "  wrote BENCH_churn.json\n"
  end

(* ------------------------------------------------------------------ *)
(* Scale: a 100k-client population through the streamed entry tier     *)
(* ------------------------------------------------------------------ *)

(* The paper's Figure 9 headline: 68,000 messages/sec end-to-end at one
   million users on three 36-core servers.  This section pushes a
   vectorized synthetic population ([Vuvuzela_loadgen]) through a real
   deployment — by default three loopback-TCP daemons with the sharded
   dead-drop store and every link streaming chunked parts — and records
   msgs/sec, ms/round and the peak-RSS high-water marks (VmHWM) of the
   coordinator and every daemon, per population × job count.  Every
   round is verified end to end (each pair's message delivered, the
   loner's slot empty) before it counts.

   Knobs: SCALE_POPS (default "1000,10000,100000"), SCALE_JOBS
   (default "1,4"), SCALE_TRANSPORT ("tcp" | "local", default "tcp"),
   SCALE_ROUNDS (timed rounds per cell, default 1).  CI runs the
   in-process smoke: SCALE_TRANSPORT=local SCALE_POPS=5000. *)
let scale_bench () =
  section
    "SCALE - 100k-client load generator, streamed entry, sharded drops \
     (writes BENCH_scale.json)";
  let module T = Vuvuzela_telemetry in
  let module Addr = Vuvuzela_transport.Addr in
  let module Loadgen = Vuvuzela_loadgen.Loadgen in
  let env_ints name default =
    match Sys.getenv_opt name with
    | None | Some "" -> default
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
  in
  let pops = env_ints "SCALE_POPS" [ 1_000; 10_000; 100_000 ] in
  let jobs_list = env_ints "SCALE_JOBS" [ 1; 4 ] in
  let rounds =
    match env_ints "SCALE_ROUNDS" [ 1 ] with r :: _ -> max 1 r | [] -> 1
  in
  let transport =
    match Sys.getenv_opt "SCALE_TRANSPORT" with
    | Some "local" -> `Local
    | _ -> `Tcp
  in
  let chunk = 512 and shards = 8 in
  let noise = Laplace.params ~mu:4. ~b:1. in
  let dial_noise = Laplace.params ~mu:1. ~b:1. in
  (* Peak-RSS proxy: the VmHWM high-water mark from /proc/<pid>/status,
     in kB (0 where /proc is unavailable). *)
  let vm_hwm_kb pid =
    match open_in (Printf.sprintf "/proc/%d/status" pid) with
    | exception Sys_error _ -> 0
    | ic ->
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                String.fold_left
                  (fun acc c ->
                    if c >= '0' && c <= '9'
                    then (acc * 10) + Char.code c - Char.code '0'
                    else acc)
                  0 line
              else scan ()
        in
        Fun.protect ~finally:(fun () -> close_in ic) scan
  in
  let sockets_allowed () =
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> false
    | fd -> (
        match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) with
        | () -> Unix.close fd; true
        | exception Unix.Unix_error _ -> Unix.close fd; false)
  in
  let server_bin =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/server_main.exe"
  in
  let free_port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close fd;
    port
  in
  let spawn_daemon ~jobs ~seed ~ports index =
    let args =
      [| server_bin; "--listen"; Printf.sprintf ":%d" ports.(index);
         "--index"; string_of_int index; "--chain-len"; "3";
         "--seed"; seed; "--mu"; "4"; "--noise-b"; "1";
         "--dial-mu"; "1"; "--dial-b"; "1"; "--deterministic-noise";
         "--jobs"; string_of_int jobs;
         "--deaddrop-shards"; string_of_int shards;
         "--pipeline"; "--pipeline-chunk"; string_of_int chunk; "--quiet" |]
    in
    let args =
      if index = 2 then args
      else
        Array.append args
          [| "--next"; Printf.sprintf ":%d" ports.(index + 1) |]
    in
    Unix.create_process server_bin args Unix.stdin Unix.stdout Unix.stderr
  in
  let stop_pid pid =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. 3.0 in
    let rec wait () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid)
          end
          else begin
            Unix.sleepf 0.02;
            wait ()
          end
      | _ -> ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    in
    wait ()
  in
  (* One cell: [rounds] verified conversation rounds of [n] clients
     through [round_streamed]; reports (ms/round, msgs/sec, delivered,
     expected). *)
  let run_cell ~n ~jobs ~server_pks ~round_streamed =
    let pop = Loadgen.create ~seed:(Printf.sprintf "scale-%d" n) ~n () in
    let pool =
      if jobs > 1 then Some (Vuvuzela_parallel.Pool.create ~jobs) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Vuvuzela_parallel.Pool.shutdown pool)
      (fun () ->
        let delivered = ref 0 and expected = ref 0 in
        let t0 = Unix.gettimeofday () in
        for round = 1 to rounds do
          let replies =
            round_streamed ~round ~produce:(fun feed ->
                Loadgen.feed_conversation ?pool pop ~round ~server_pks ~chunk
                  ~sink:feed)
          in
          let d = Loadgen.verify ?pool pop ~round replies in
          delivered := !delivered + d.Loadgen.delivered;
          expected := !expected + d.Loadgen.expected;
          if d.Loadgen.delivered <> d.Loadgen.expected then
            failwith
              (Printf.sprintf "scale: round %d delivered %d/%d" round
                 d.Loadgen.delivered d.Loadgen.expected);
          if d.Loadgen.lone <> n mod 2 then
            failwith "scale: loner did not see the empty result"
        done;
        let dt = Unix.gettimeofday () -. t0 in
        let ms_per_round = 1000. *. dt /. float_of_int rounds in
        let msgs_per_sec = float_of_int (n * rounds) /. dt in
        (ms_per_round, msgs_per_sec, !delivered, !expected))
  in
  let row ~n ~jobs ~server_rss (ms, mps, delivered, expected) =
    Printf.printf
      "  n=%-7d jobs=%-3d %9.1f ms/round %9.0f msgs/sec   coordinator \
       %d MB peak, servers %d MB peak\n%!"
      n jobs ms mps
      (vm_hwm_kb (Unix.getpid ()) / 1024)
      (server_rss / 1024);
    T.Json.Obj
      [
        ("population", T.Json.Num (float_of_int n));
        ("jobs", T.Json.Num (float_of_int jobs));
        ("ms_per_round", T.Json.Num ms);
        ("msgs_per_sec", T.Json.Num mps);
        ("delivered", T.Json.Num (float_of_int delivered));
        ("expected", T.Json.Num (float_of_int expected));
        ( "coordinator_peak_rss_kb",
          T.Json.Num (float_of_int (vm_hwm_kb (Unix.getpid ()))) );
        ("server_peak_rss_kb", T.Json.Num (float_of_int server_rss));
      ]
  in
  let tcp_cell ~n ~jobs =
    let seed = "bench-scale" in
    let ports = Array.init 3 (fun _ -> free_port ()) in
    let pids = List.map (spawn_daemon ~jobs ~seed ~ports) [ 2; 1; 0 ] in
    Fun.protect
      ~finally:(fun () -> List.iter stop_pid pids)
      (fun () ->
        match
          Remote.connect ~handshake_timeout_ms:30_000.
            ~addr:(Addr.loopback ~port:ports.(0))
            ()
        with
        | Error e -> failwith ("scale: remote connect: " ^ e)
        | Ok remote ->
            Fun.protect
              ~finally:(fun () -> Remote.shutdown remote)
              (fun () ->
                Remote.set_deadline_ms remote (Some 600_000.);
                let server_pks = Remote.public_keys remote in
                let round_streamed ~round ~produce =
                  match
                    Remote.conversation_round_streamed remote ~round ~produce
                  with
                  | Ok replies -> replies
                  | Error st ->
                      failwith (Format.asprintf "scale: %a" Rpc.pp_status st)
                in
                let cell = run_cell ~n ~jobs ~server_pks ~round_streamed in
                let server_rss =
                  List.fold_left (fun acc pid -> max acc (vm_hwm_kb pid)) 0 pids
                in
                row ~n ~jobs ~server_rss cell))
  in
  let local_cell ~n ~jobs =
    let chain =
      Chain.of_config
        Config.(
          default |> with_seed "bench-scale" |> with_n_servers 3
          |> with_noise noise |> with_dial_noise dial_noise
          |> with_noise_mode Noise.Deterministic |> with_jobs jobs
          |> with_deaddrop_shards shards |> with_pipeline ~chunk true)
    in
    Fun.protect
      ~finally:(fun () -> Chain.shutdown chain)
      (fun () ->
        let server_pks = Chain.public_keys chain in
        let round_streamed ~round ~produce =
          match Chain.conversation_round_streamed chain ~round ~produce with
          | Ok replies -> replies
          | Error st -> failwith (Format.asprintf "scale: %a" Rpc.pp_status st)
        in
        let cell = run_cell ~n ~jobs ~server_pks ~round_streamed in
        (* Servers live in this process: one VmHWM covers both roles. *)
        row ~n ~jobs ~server_rss:(vm_hwm_kb (Unix.getpid ())) cell)
  in
  let can_tcp =
    transport = `Tcp && sockets_allowed () && Sys.file_exists server_bin
  in
  if transport = `Tcp && not can_tcp then
    Printf.printf
      "  loopback TCP unavailable (sandbox or missing %s): falling back to \
       the in-process chain\n"
      server_bin;
  let transport_name = if can_tcp then "loopback-tcp" else "in-process" in
  Printf.printf
    "  transport=%s  shards=%d  chunk=%d  rounds/cell=%d  (paper Figure 9: \
     68,000 msgs/sec at 1M users, 3x36 cores)\n"
    transport_name shards chunk rounds;
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun jobs ->
            if can_tcp then tcp_cell ~n ~jobs else local_cell ~n ~jobs)
          jobs_list)
      pops
  in
  let doc =
    T.Json.Obj
      [
        ("benchmark", T.Json.Str "scale");
        ("schema", T.Json.Num 1.);
        ( "host_cores",
          T.Json.Num (float_of_int (Vuvuzela_parallel.Pool.default_jobs ())) );
        ("transport", T.Json.Str transport_name);
        ("servers", T.Json.Num 3.);
        ("deaddrop_shards", T.Json.Num (float_of_int shards));
        ("entry_chunk", T.Json.Num (float_of_int chunk));
        ("rounds_per_cell", T.Json.Num (float_of_int rounds));
        ("paper_msgs_per_sec", T.Json.Num 68_000.);
        ("rows", T.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc (T.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_scale.json\n"

let () =
  (* BENCH_ONLY=transport: just the daemon round-trip section (used by
     CI smoke; the full run takes minutes). *)
  if Sys.getenv_opt "BENCH_ONLY" = Some "transport" then begin
    transport_bench ();
    exit 0
  end;
  if Sys.getenv_opt "BENCH_ONLY" = Some "crypto" then begin
    crypto_bench ();
    exit 0
  end;
  if Sys.getenv_opt "BENCH_ONLY" = Some "churn" then begin
    churn_bench ();
    exit 0
  end;
  if Sys.getenv_opt "BENCH_ONLY" = Some "scale" then begin
    scale_bench ();
    exit 0
  end;
  print_endline "VUVUZELA (SOSP 2015) - evaluation reproduction";
  let dh_ns = run_benchmarks () in
  figure6 ();
  figure7 ();
  figure8 ();
  figure9 ();
  figure10 ();
  figure11 ();
  headlines dh_ns;
  posteriors ();
  ablation_noise ();
  ablation_m_tuning ();
  baseline_comparison ();
  live_round_scaling ();
  parallel_scaling ();
  round_stage_export ();
  crypto_bench ();
  faults_overhead ();
  transport_bench ();
  churn_bench ();
  scale_bench ();
  workload_summary ();
  line ();
  print_endline "done.  See EXPERIMENTS.md for the paper-vs-measured index."
