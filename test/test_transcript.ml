(* Wire-transcript pin: a seeded schedule must produce bit-identical
   bytes on the wire forever.

   The conversation digest was captured from the seed implementation
   (TweetNaCl 16×16-bit Fe25519) — the 51-bit field arithmetic that
   replaced it is a pure representation change, so every onion
   ciphertext, dead-drop ID, and reply byte must come out identical.
   The dialing-inclusive digest extends the same hash over a dialing
   round.  If either test ever fails, protocol bytes changed: a
   compatibility break, not a refactor.

   The fixture itself lives in [Transcript_pin] so the loopback-TCP
   deployment test ([test/net]) checks its multi-process chain against
   literally the same digest computation. *)

let with_in_process ?jobs ?pipeline_chunk ?deaddrop_shards ?entry_streaming f =
  let backend, shutdown =
    Transcript_pin.in_process ?jobs ?pipeline_chunk ?deaddrop_shards
      ?entry_streaming ()
  in
  Fun.protect ~finally:shutdown (fun () -> f backend)

let test_pinned_transcript () =
  with_in_process (fun backend ->
      Alcotest.(check string)
        "3-round wire transcript matches the seed implementation"
        Transcript_pin.pinned_conv_digest
        (Transcript_pin.conv_digest backend))

let test_pinned_full_transcript () =
  with_in_process (fun backend ->
      Alcotest.(check string)
        "conversation + dialing transcript matches its pin"
        Transcript_pin.pinned_full_digest
        (Transcript_pin.full_digest backend))

(* The transcript is a function of the seed alone: two fresh deployments
   agree byte for byte (guards against hidden global state). *)
let test_transcript_deterministic () =
  let d1 = with_in_process Transcript_pin.full_digest in
  let d2 = with_in_process Transcript_pin.full_digest in
  Alcotest.(check string) "transcript reproducible" d1 d2

(* The engine knobs — worker domains, streamed relay, chunk size — are
   pure scheduling: any combination must reproduce the pinned bytes. *)
let test_transcript_engine_invariant () =
  List.iter
    (fun (jobs, pipeline_chunk) ->
      let digest =
        with_in_process ~jobs ?pipeline_chunk Transcript_pin.full_digest
      in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d chunk=%s" jobs
           (match pipeline_chunk with
           | None -> "-"
           | Some c -> string_of_int c))
        Transcript_pin.pinned_full_digest digest)
    [
      (2, None);
      (4, None);
      (1, Some 1);
      (1, Some 3);
      (2, Some 2);
      (4, Some 16);
    ]

(* The scale plane — sharded dead-drop store, streamed entry tier — is
   pure engine too: any shard count, at any job count, streamed or
   materialized, must reproduce the pinned bytes.  (The TCP counterpart
   of this matrix runs in [test/net].) *)
let test_transcript_scale_plane_invariant () =
  List.iter
    (fun (jobs, deaddrop_shards, entry_streaming) ->
      let digest =
        with_in_process ~jobs ~deaddrop_shards ~entry_streaming
          Transcript_pin.full_digest
      in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d shards=%d streaming=%b" jobs deaddrop_shards
           entry_streaming)
        Transcript_pin.pinned_full_digest digest)
    [
      (1, 4, false);
      (4, 4, false);
      (1, 16, true);
      (4, 16, true);
      (1, 1, true);
      (4, 1, true);
    ]

(* Observability is pure control plane: the same schedule with a live
   telemetry sink — spans, metrics and the budget ledger all recording
   — must reproduce the pinned bytes at the job counts and pipeline
   settings the observability plane promises not to perturb. *)
let test_transcript_observability_invariant () =
  List.iter
    (fun (jobs, pipeline_chunk) ->
      let telemetry = Vuvuzela_telemetry.Telemetry.create () in
      let backend, shutdown =
        Transcript_pin.in_process ~telemetry ~jobs ?pipeline_chunk ()
      in
      let digest =
        Fun.protect ~finally:shutdown (fun () ->
            Transcript_pin.full_digest backend)
      in
      Alcotest.(check string)
        (Printf.sprintf "telemetry on, jobs=%d chunk=%s" jobs
           (match pipeline_chunk with
           | None -> "-"
           | Some c -> string_of_int c))
        Transcript_pin.pinned_full_digest digest;
      (* The sink really was live, not a nil path. *)
      Alcotest.(check bool)
        (Printf.sprintf "spans recorded at jobs=%d" jobs)
        true
        (Vuvuzela_telemetry.Trace.span_count
           (Vuvuzela_telemetry.Telemetry.trace telemetry)
        > 0))
    [ (1, None); (4, None); (1, Some 3); (4, Some 3) ]

let suite =
  ( "transcript",
    [
      Alcotest.test_case "pinned 3-round wire transcript" `Quick
        test_pinned_transcript;
      Alcotest.test_case "pinned dialing-inclusive transcript" `Quick
        test_pinned_full_transcript;
      Alcotest.test_case "transcript deterministic" `Quick
        test_transcript_deterministic;
      Alcotest.test_case "pinned at any jobs/pipeline combination" `Quick
        test_transcript_engine_invariant;
      Alcotest.test_case "pinned across the scale plane" `Quick
        test_transcript_scale_plane_invariant;
      Alcotest.test_case "pinned with observability on" `Quick
        test_transcript_observability_invariant;
    ] )
