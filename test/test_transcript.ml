(* Wire-transcript pin: a seeded 3-round schedule must produce
   bit-identical bytes on the wire forever.

   The digest below was captured from the seed implementation (TweetNaCl
   16×16-bit Fe25519).  The 51-bit field arithmetic that replaced it is a
   pure representation change — every packed field element, and therefore
   every onion ciphertext, dead-drop ID, and reply byte, must come out
   identical.  If this test ever fails, the crypto rewrite changed
   protocol bytes, which is a compatibility break, not a refactor. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela

(* SHA-256 over: server public keys, then for each of rounds 1..3 every
   client request onion followed by every reply blob, in slot order. *)
let pinned_digest =
  "f0a4328962790e997f48ca4e9b15e3f27665e12abacf58dfe90af0de7915b02d"

let transcript_digest () =
  let chain =
    Chain.create ~seed:"transcript-pin" ~n_servers:3
      ~noise:(Laplace.params ~mu:3. ~b:1.)
      ~dial_noise:(Laplace.params ~mu:1. ~b:1.)
      ~noise_mode:Noise.Deterministic ()
  in
  let pks = Chain.public_keys chain in
  let clients =
    List.init 4 (fun i ->
        let seed = Printf.sprintf "transcript-c%d" i in
        Client.create ~seed
          ~identity:(Types.identity_of_seed (Bytes.of_string seed))
          ~server_pks:pks ())
  in
  (match clients with
  | a :: b :: c :: d :: _ ->
      Client.start_conversation a ~peer_pk:(Client.public_key b);
      Client.start_conversation b ~peer_pk:(Client.public_key a);
      Client.start_conversation c ~peer_pk:(Client.public_key d);
      Client.start_conversation d ~peer_pk:(Client.public_key c);
      Client.send a "hello from the pinned transcript";
      Client.send c "second pair payload"
  | _ -> assert false);
  let h = Sha256.init () in
  List.iter (fun pk -> Sha256.feed h pk) pks;
  for round = 1 to 3 do
    let requests =
      Array.of_list
        (List.map (fun c -> Client.conversation_request c ~round) clients)
    in
    Array.iter (Sha256.feed h) requests;
    let replies = Chain.conversation_round_exn chain ~round requests in
    Array.iter (Sha256.feed h) replies;
    List.iteri
      (fun i c ->
        ignore (Client.handle_conversation_reply c ~round replies.(i)))
      clients
  done;
  Bytes_util.to_hex (Sha256.get h)

let test_pinned_transcript () =
  Alcotest.(check string)
    "3-round wire transcript matches the seed implementation" pinned_digest
    (transcript_digest ())

(* The transcript is a function of the seed alone: two fresh deployments
   agree byte for byte (guards against hidden global state). *)
let test_transcript_deterministic () =
  Alcotest.(check string)
    "transcript reproducible" (transcript_digest ()) (transcript_digest ())

let suite =
  ( "transcript",
    [
      Alcotest.test_case "pinned 3-round wire transcript" `Quick
        test_pinned_transcript;
      Alcotest.test_case "transcript deterministic" `Quick
        test_transcript_deterministic;
    ] )
