(** The seeded wire-transcript fixture, shared between the alcotest
    suite (in-process chain) and the loopback-TCP deployment test
    ([test/net]): one digest computation, two backends, so "the TCP
    chain is bit-identical to the in-process chain" is checked against
    literally the same bytes. *)

type backend = {
  pks : bytes list;
  conversation_round : round:int -> bytes array -> bytes array;
      (** must raise on failure *)
  dialing_round : round:int -> m:int -> bytes array -> bytes array;
}

val seed : string
(** The deployment seed ["transcript-pin"]; servers use the standard
    per-position derivation from it. *)

val n_servers : int
val noise : Vuvuzela_dp.Laplace.params
val dial_noise : Vuvuzela_dp.Laplace.params
(** Chain parameters every backend must use ([Deterministic] noise). *)

val in_process :
  ?telemetry:Vuvuzela_telemetry.Telemetry.t ->
  ?jobs:int ->
  ?pipeline_chunk:int ->
  ?deaddrop_shards:int ->
  ?entry_streaming:bool ->
  unit ->
  backend * (unit -> unit)
(** The reference backend: [Chain.of_config] with [seed]; the thunk
    shuts the chain down.  [jobs], [pipeline_chunk] (which turns on
    the streamed relay), [deaddrop_shards] (the sharded store),
    [entry_streaming] (rounds pushed through the chunked streamed-entry
    API) and [telemetry] (a live observability sink) must never change
    the digests — that is the point of pinning them. *)

val conv_digest : backend -> string
(** SHA-256 (hex) over: server public keys, then rounds 1..3 — every
    request onion, then every reply blob, in slot order — from 4 seeded
    clients in two conversing pairs. *)

val full_digest : backend -> string
(** [conv_digest]'s schedule followed by dialing round 1 (m = 1):
    requests, then acks, fed to the same hash. *)

val pinned_conv_digest : string
(** Captured from the seed implementation; {!conv_digest} of any
    backend must equal it forever. *)

val pinned_full_digest : string
(** Captured when the dialing-inclusive pin was introduced. *)
