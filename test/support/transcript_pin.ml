(* See the interface.  The conversation-only digest and its pin predate
   the transport subsystem (they pinned the 51-bit field rewrite); the
   dialing-inclusive digest extends the same hash so one constant covers
   both round types.  Everything here is a pure function of the seeds:
   any backend — in-process chain, loopback TCP daemons — that derives
   its servers from [seed] must reproduce these digests bit for bit. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela

type backend = {
  pks : bytes list;
  conversation_round : round:int -> bytes array -> bytes array;
  dialing_round : round:int -> m:int -> bytes array -> bytes array;
}

let seed = "transcript-pin"
let n_servers = 3
let noise = Laplace.params ~mu:3. ~b:1.
let dial_noise = Laplace.params ~mu:1. ~b:1.

let pinned_conv_digest =
  "f0a4328962790e997f48ca4e9b15e3f27665e12abacf58dfe90af0de7915b02d"

let pinned_full_digest =
  "29314874846a3d68a8bd449a79cc736a758e2ef32eeb722911ecb7b741700eab"

let in_process ?telemetry ?(jobs = 1) ?pipeline_chunk ?(deaddrop_shards = 1)
    ?(entry_streaming = false) () =
  let chain =
    Chain.of_config
      Config.(
        default |> with_seed seed |> with_n_servers n_servers
        |> with_noise noise |> with_dial_noise dial_noise
        |> with_noise_mode Noise.Deterministic |> with_jobs jobs
        |> with_deaddrop_shards deaddrop_shards
        |> (match telemetry with
           | None -> Fun.id
           | Some tel -> with_telemetry tel)
        |>
        match pipeline_chunk with
        | None -> Fun.id
        | Some chunk -> with_pipeline ~chunk true)
  in
  (* Streamed-entry backends push the same slot-ordered requests as
     chunks (an awkward size, to exercise uneven tails); the digests
     must not move. *)
  let chunk = Option.value pipeline_chunk ~default:3 in
  let feed_chunks requests feed =
    let n = Array.length requests in
    let off = ref 0 in
    while !off < n do
      let len = min chunk (n - !off) in
      feed (Array.sub requests !off len);
      off := !off + len
    done
  in
  let or_fail = function
    | Ok replies -> replies
    | Error st -> failwith (Format.asprintf "%a" Rpc.pp_status st)
  in
  ( {
      pks = Chain.public_keys chain;
      conversation_round =
        (fun ~round requests ->
          if entry_streaming then
            or_fail
              (Chain.conversation_round_streamed chain ~round
                 ~produce:(feed_chunks requests))
          else Chain.conversation_round_exn chain ~round requests);
      dialing_round =
        (fun ~round ~m requests ->
          if entry_streaming then
            or_fail
              (Chain.dialing_round_streamed chain ~round ~m
                 ~produce:(feed_chunks requests))
          else Chain.dialing_round_exn chain ~round ~m requests);
    },
    fun () -> Chain.shutdown chain )

(* 4 seeded clients in two conversing pairs; a[0] and c[2] have queued
   messages, the others send cover drops. *)
let make_clients pks =
  let clients =
    List.init 4 (fun i ->
        let cseed = Printf.sprintf "transcript-c%d" i in
        Client.create ~seed:cseed
          ~identity:(Types.identity_of_seed (Bytes.of_string cseed))
          ~server_pks:pks ())
  in
  (match clients with
  | a :: b :: c :: d :: _ ->
      Client.start_conversation a ~peer_pk:(Client.public_key b);
      Client.start_conversation b ~peer_pk:(Client.public_key a);
      Client.start_conversation c ~peer_pk:(Client.public_key d);
      Client.start_conversation d ~peer_pk:(Client.public_key c);
      Client.send a "hello from the pinned transcript";
      Client.send c "second pair payload"
  | _ -> assert false);
  clients

let feed_conv_rounds h backend clients =
  for round = 1 to 3 do
    let requests =
      Array.of_list
        (List.map (fun c -> Client.conversation_request c ~round) clients)
    in
    Array.iter (Sha256.feed h) requests;
    let replies = backend.conversation_round ~round requests in
    Array.iter (Sha256.feed h) replies;
    List.iteri
      (fun i c -> ignore (Client.handle_conversation_reply c ~round replies.(i)))
      clients
  done

let conv_digest backend =
  let clients = make_clients backend.pks in
  let h = Sha256.init () in
  List.iter (fun pk -> Sha256.feed h pk) backend.pks;
  feed_conv_rounds h backend clients;
  Bytes_util.to_hex (Sha256.get h)

let full_digest backend =
  let clients = make_clients backend.pks in
  let h = Sha256.init () in
  List.iter (fun pk -> Sha256.feed h pk) backend.pks;
  feed_conv_rounds h backend clients;
  let m = 1 in
  let requests =
    Array.of_list
      (List.map (fun c -> Client.dialing_request c ~dial_round:1 ~m) clients)
  in
  Array.iter (Sha256.feed h) requests;
  let acks = backend.dialing_round ~round:1 ~m requests in
  Array.iter (Sha256.feed h) acks;
  Bytes_util.to_hex (Sha256.get h)
