(* Crypto substrate tests: RFC/NIST vectors plus qcheck properties. *)

open Vuvuzela_crypto

let hex = Bytes_util.of_hex
let check_hex msg expected actual =
  Alcotest.(check string) msg expected (Bytes_util.to_hex actual)

(* ------------------------------------------------------------------ *)
(* SHA-256 (FIPS 180-4 / NIST CAVS)                                    *)
(* ------------------------------------------------------------------ *)

let test_sha256_vectors () =
  check_hex "sha256(abc)"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_string "abc");
  check_hex "sha256(empty)"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_string "");
  check_hex "sha256(two blocks)"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_string
       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "sha256(million a)"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (Bytes.make 1_000_000 'a'))

let test_sha256_incremental () =
  (* Feeding in odd-sized chunks must agree with one-shot digesting. *)
  let data = Bytes.init 1000 (fun i -> Char.chr (i land 0xff)) in
  let expected = Bytes_util.to_hex (Sha256.digest data) in
  let t = Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 7; 63; 64; 65; 100; 128; 200; 372 ] in
  List.iter
    (fun n ->
      Sha256.feed t (Bytes.sub data !pos n);
      pos := !pos + n)
    sizes;
  assert (!pos = 1000);
  check_hex "incremental = one-shot" expected (Sha256.get t)

let test_sha256_get_nondestructive () =
  let t = Sha256.init () in
  Sha256.feed t (Bytes.of_string "ab");
  let d1 = Sha256.get t in
  let d2 = Sha256.get t in
  check_hex "get twice agrees" (Bytes_util.to_hex d1) d2;
  Sha256.feed t (Bytes.of_string "c");
  check_hex "can continue after get"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.get t)

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256 (RFC 4231)                                              *)
(* ------------------------------------------------------------------ *)

let test_hmac_vectors () =
  let case name key data expected =
    check_hex name expected (Hmac.sha256 ~key data)
  in
  case "rfc4231 tc1"
    (Bytes.make 20 '\x0b')
    (Bytes.of_string "Hi There")
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  case "rfc4231 tc2" (Bytes.of_string "Jefe")
    (Bytes.of_string "what do ya want for nothing?")
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  case "rfc4231 tc3" (Bytes.make 20 '\xaa') (Bytes.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  case "rfc4231 tc4"
    (hex "0102030405060708090a0b0c0d0e0f10111213141516171819")
    (Bytes.make 50 '\xcd')
    "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b";
  case "rfc4231 tc6 (large key)" (Bytes.make 131 '\xaa')
    (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First")
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54";
  case "rfc4231 tc7 (large key+data)" (Bytes.make 131 '\xaa')
    (Bytes.of_string
       "This is a test using a larger than block-size key and a larger \
        than block-size data. The key needs to be hashed before being \
        used by the HMAC algorithm.")
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"

let test_hmac_verify () =
  let key = Bytes.of_string "k" and data = Bytes.of_string "d" in
  let tag = Hmac.sha256 ~key data in
  Alcotest.(check bool) "verify ok" true (Hmac.verify ~key ~tag data);
  let bad = Bytes.copy tag in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 1));
  Alcotest.(check bool) "verify bad" false (Hmac.verify ~key ~tag:bad data)

(* ------------------------------------------------------------------ *)
(* HKDF (RFC 5869)                                                     *)
(* ------------------------------------------------------------------ *)

let test_hkdf_vectors () =
  let okm =
    Hkdf.derive
      ~salt:(hex "000102030405060708090a0b0c")
      ~ikm:(Bytes.make 22 '\x0b')
      ~info:(hex "f0f1f2f3f4f5f6f7f8f9")
      42
  in
  check_hex "rfc5869 tc1"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    okm;
  let prk = Hkdf.extract ~salt:(hex "000102030405060708090a0b0c") (Bytes.make 22 '\x0b') in
  check_hex "rfc5869 tc1 prk"
    "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
  let okm3 = Hkdf.derive ~ikm:(Bytes.make 22 '\x0b') 42 in
  check_hex "rfc5869 tc3 (no salt, no info)"
    "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
    okm3

(* ------------------------------------------------------------------ *)
(* ChaCha20 (RFC 8439)                                                 *)
(* ------------------------------------------------------------------ *)

let test_chacha20_block () =
  let key = hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = hex "000000090000004a00000000" in
  check_hex "rfc8439 2.3.2 block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (Chacha20.block ~key ~nonce ~counter:1)

let sunscreen =
  "Ladies and Gentlemen of the class of '99: If I could offer you only \
   one tip for the future, sunscreen would be it."

let test_chacha20_encrypt () =
  let key = hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = hex "000000000000004a00000000" in
  let ct = Chacha20.encrypt ~counter:1 ~key ~nonce (Bytes.of_string sunscreen) in
  check_hex "rfc8439 2.4.2 ciphertext"
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d"
    ct;
  Alcotest.(check string) "roundtrip" sunscreen
    (Bytes.to_string (Chacha20.decrypt ~counter:1 ~key ~nonce ct))

(* ------------------------------------------------------------------ *)
(* Poly1305 (RFC 8439)                                                 *)
(* ------------------------------------------------------------------ *)

let test_poly1305_vector () =
  let key = hex "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b" in
  check_hex "rfc8439 2.5.2 tag" "a8061dc1305136c6c22b8baf0c0127a9"
    (Poly1305.mac ~key (Bytes.of_string "Cryptographic Forum Research Group"))

let test_poly1305_incremental () =
  let key = Drbg.generate (Drbg.of_string "poly-inc") 32 in
  let data = Drbg.generate (Drbg.of_string "poly-data") 333 in
  let one_shot = Poly1305.mac ~key data in
  let t = Poly1305.init key in
  let pos = ref 0 in
  List.iter
    (fun n ->
      Poly1305.feed t (Bytes.sub data !pos n);
      pos := !pos + n)
    [ 1; 15; 16; 17; 31; 100; 153 ];
  assert (!pos = 333);
  check_hex "incremental = one-shot" (Bytes_util.to_hex one_shot)
    (Poly1305.finish t)

(* Edge cases around the 2^130-5 modulus: an all-0xff block exercises the
   final conditional subtraction. *)
let test_poly1305_edge () =
  (* r = 2-ish, data forcing h ≈ p: from the RFC's security considerations
     appendix (test vector 2 of poly1305-donna). *)
  let key = hex "0200000000000000000000000000000000000000000000000000000000000000" in
  let data = hex "ffffffffffffffffffffffffffffffff" in
  (* h = 2^128 - 1 + 2^128 = ..., tag = 03000... *)
  check_hex "wrap edge" "03000000000000000000000000000000"
    (Poly1305.mac ~key data)

(* ------------------------------------------------------------------ *)
(* AEAD (RFC 8439 §2.8.2)                                              *)
(* ------------------------------------------------------------------ *)

let test_aead_vector () =
  let key = hex "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f" in
  let nonce = hex "070000004041424344454647" in
  let aad = hex "50515253c0c1c2c3c4c5c6c7" in
  let sealed = Aead.seal ~key ~nonce ~aad (Bytes.of_string sunscreen) in
  check_hex "rfc8439 2.8.2 ct||tag"
    ("d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
      3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
      92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
      3ff4def08e4b7a9de576d26586cec64b6116"
    ^ "1ae10b594f09e26a7e902ecbd0600691")
    sealed;
  (match Aead.open_ ~key ~nonce ~aad sealed with
  | Some pt -> Alcotest.(check string) "roundtrip" sunscreen (Bytes.to_string pt)
  | None -> Alcotest.fail "AEAD open failed");
  (* Any bit flip anywhere must be rejected. *)
  for i = 0 to Bytes.length sealed - 1 do
    let bad = Bytes.copy sealed in
    Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 0x40));
    match Aead.open_ ~key ~nonce ~aad bad with
    | None -> ()
    | Some _ -> Alcotest.fail (Printf.sprintf "tamper at byte %d accepted" i)
  done

let test_aead_wrong_aad () =
  let key = Bytes.make 32 '\x01' in
  let nonce = Aead.nonce_of ~domain:7 ~counter:42 in
  let sealed = Aead.seal ~key ~nonce ~aad:(Bytes.of_string "a") (Bytes.of_string "m") in
  Alcotest.(check bool) "wrong aad rejected" true
    (Aead.open_ ~key ~nonce ~aad:(Bytes.of_string "b") sealed = None);
  Alcotest.(check bool) "short input rejected" true
    (Aead.open_ ~key ~nonce (Bytes.make 3 'x') = None)


(* ------------------------------------------------------------------ *)
(* RFC 8439 standards vector tables                                    *)
(*                                                                     *)
(* Table-driven vectors from the RFC body and appendix A, each run     *)
(* against BOTH the optimized fast path and the retained seed oracle   *)
(* [Chacha20_ref], so a regression in either implementation — or any   *)
(* divergence between them — fails here before the differential prop   *)
(* suite even runs.                                                    *)
(* ------------------------------------------------------------------ *)

(* The two long appendix plaintexts (A.2 / A.3). *)
let ietf_text =
  "Any submission to the IETF intended by the Contributor for \
   publication as all or part of an IETF Internet-Draft or RFC and any \
   statement made within the context of an IETF activity is considered \
   an \"IETF Contribution\". Such statements include oral statements in \
   IETF sessions, as well as written and electronic communications made \
   at any time or place, which are addressed to"

let jabberwock =
  "'Twas brillig, and the slithy toves\n\
   Did gyre and gimble in the wabe:\n\
   All mimsy were the borogoves,\n\
   And the mome raths outgrabe."

let k_zero = Bytes.make 32 '\000'
let n_zero = Bytes.make 12 '\000'
let k_one = hex "0000000000000000000000000000000000000000000000000000000000000001"
let k_jab = hex "1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dcc806d3f9e4c0a"
let n_two = hex "000000000000000000000002"

(* ChaCha20 block function: §2.3.2 and A.1.  (The §2.3.2 counter=1 block
   is already pinned in [test_chacha20_block]; these are the appendix
   edge cases: counter 0, counter 2, key bit in the last word, nonce bit
   in the last word.) *)
let chacha_block_vectors =
  [
    ( "A.1 #1 (zero key/nonce, ctr 0)", k_zero, n_zero, 0,
      "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
       da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586" );
    ( "A.1 #2 (zero key/nonce, ctr 1)", k_zero, n_zero, 1,
      "9f07e7be5551387a98ba977c732d080dcb0f29a048e3656912c6533e32ee7aed\
       29b721769ce64e43d57133b074d839d531ed1f28510afb45ace10a1f4b794d6f" );
    ( "A.1 #3 (key ..01, ctr 1)", k_one, n_zero, 1,
      "3aeb5224ecf849929b9d828db1ced4dd832025e8018b8160b82284f3c949aa5a\
       8eca00bbb4a73bdad192b5c42f73f2fd4e273644c8b36125a64addeb006c13a0" );
    ( "A.1 #4 (key 00ff.., ctr 2)",
      hex "00ff000000000000000000000000000000000000000000000000000000000000",
      n_zero, 2,
      "72d54dfbf12ec44b362692df94137f328fea8da73990265ec1bbbea1ae9af0ca\
       13b25aa26cb4a648cb9b9d1be65b2c0924a66c54d545ec1b7374f4872e99f096" );
    ( "A.1 #5 (nonce ..02, ctr 0)", k_zero,
      hex "000000000000000000000002", 0,
      "c2c64d378cd536374ae204b9ef933fcd1a8b2288b3dfa49672ab765b54ee27c7\
       8a970e0e955c14f3a88e741b97c286f75f8fc299e8148362fa198a39531bed6d" );
  ]

let test_chacha20_block_table () =
  List.iter
    (fun (name, key, nonce, counter, expected) ->
      check_hex (name ^ " [fast]") expected
        (Chacha20.block ~key ~nonce ~counter);
      check_hex (name ^ " [ref]") expected
        (Chacha20_ref.block ~key ~nonce ~counter))
    chacha_block_vectors

(* ChaCha20 encryption: A.2 (incl. the counter=2-spanning vectors; the
   §2.4.2 sunscreen vector lives in [test_chacha20_encrypt]). *)
let chacha_encrypt_vectors =
  [
    ( "A.2 #1 (zero, ctr 0, 64x00)", k_zero, n_zero, 0,
      Bytes.make 64 '\000',
      "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
       da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586" );
    ( "A.2 #2 (IETF text, ctr 1)", k_one, n_two, 1,
      Bytes.of_string ietf_text,
      "a3fbf07df3fa2fde4f376ca23e82737041605d9f4f4f57bd8cff2c1d4b7955ec\
       2a97948bd3722915c8f3d337f7d370050e9e96d647b7c39f56e031ca5eb6250d\
       4042e02785ececfa4b4bb5e8ead0440e20b6e8db09d881a7c6132f420e527950\
       42bdfa7773d8a9051447b3291ce1411c680465552aa6c405b7764d5e87bea85a\
       d00f8449ed8f72d0d662ab052691ca66424bc86d2df80ea41f43abf937d3259d\
       c4b2d0dfb48a6c9139ddd7f76966e928e635553ba76c5c879d7b35d49eb2e62b\
       0871cdac638939e25e8a1e0ef9d5280fa8ca328b351c3c765989cbcf3daa8b6c\
       cc3aaf9f3979c92b3720fc88dc95ed84a1be059c6499b9fda236e7e818b04b0b\
       c39c1e876b193bfe5569753f88128cc08aaa9b63d1a16f80ef2554d7189c411f\
       5869ca52c5b83fa36ff216b9c1d30062bebcfd2dc5bce0911934fda79a86f6e6\
       98ced759c3ff9b6477338f3da4f9cd8514ea9982ccafb341b2384dd902f3d1ab\
       7ac61dd29c6f21ba5b862f3730e37cfdc4fd806c22f221" );
    ( "A.2 #3 (jabberwock, ctr 42)", k_jab, n_two, 42,
      Bytes.of_string jabberwock,
      "4842b04530b464f51486a182060af45a1618ef17da32d434f346c35a23cd0d39\
       8cb42c674dbc38eaa562e2f214df48530895b24490fedde676e1d9d89ffb49f4\
       a93f500955fe23171b09bcefd9685c0e828de315c73e0705bea8cd38864e7b57\
       31e8cca33b296cdb901ac5a2a497a7e09868dd2d95ecb7dc1e98ebc447c141" );
  ]

let test_chacha20_encrypt_table () =
  List.iter
    (fun (name, key, nonce, counter, pt, expected) ->
      let ct = Chacha20.encrypt ~counter ~key ~nonce pt in
      check_hex (name ^ " [fast]") expected ct;
      check_hex (name ^ " [ref]") expected
        (Chacha20_ref.encrypt ~counter ~key ~nonce pt);
      Alcotest.(check bool)
        (name ^ " roundtrip") true
        (Bytes.equal pt (Chacha20.decrypt ~counter ~key ~nonce ct)))
    chacha_encrypt_vectors

(* Poly1305: A.3, including the r=0 edge keys (#1/#2), tag = s when
   r = 0 (#2/#3), and the h >= p wraparound constructions (#4-#9; the
   donna "#2" wrap case is in [test_poly1305_edge], the §2.5.2 vector in
   [test_poly1305_vector]). *)
let poly1305_vectors =
  [
    ( "A.3 #1 (zero key, 64x00)",
      "0000000000000000000000000000000000000000000000000000000000000000",
      Bytes.make 64 '\000', "00000000000000000000000000000000" );
    ( "A.3 #2 (r=0, tag = s)",
      "0000000000000000000000000000000036e5f6b5c5e06070f0efca96227a863e",
      Bytes.of_string ietf_text, "36e5f6b5c5e06070f0efca96227a863e" );
    ( "A.3 #3 (s=0)",
      "36e5f6b5c5e06070f0efca96227a863e00000000000000000000000000000000",
      Bytes.of_string ietf_text, "f3477e7cd95417af89a6b8794c310cf0" );
    ( "A.3 #4 (jabberwock)",
      "1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dcc806d3f9e4c0a",
      Bytes.of_string jabberwock, "4541669a7eaaee61e70a002edbf3c2ac" );
    ( "A.3 #5 (h wraps 2^130-5)",
      "0200000000000000000000000000000000000000000000000000000000000000",
      hex "ffffffffffffffffffffffffffffffff",
      "03000000000000000000000000000000" );
    ( "A.3 #6 (s wraps 2^128)",
      "02000000000000000000000000000000ffffffffffffffffffffffffffffffff",
      hex "02000000000000000000000000000000",
      "03000000000000000000000000000000" );
    ( "A.3 #7 (5*H + L >= 2^130)",
      "0100000000000000000000000000000000000000000000000000000000000000",
      hex "fffffffffffffffffffffffffffffffff0ffffffffffffffffffffffffffff\
           ff11000000000000000000000000000000",
      "05000000000000000000000000000000" );
    ( "A.3 #8 (h = 0 after reduction)",
      "0100000000000000000000000000000000000000000000000000000000000000",
      hex "fffffffffffffffffffffffffffffffffbfefefefefefefefefefefefefefe\
           fe01010101010101010101010101010101",
      "00000000000000000000000000000000" );
    ( "A.3 #9 (2^130-6 -> -5 -> tag)",
      "0200000000000000000000000000000000000000000000000000000000000000",
      hex "fdffffffffffffffffffffffffffffff",
      "faffffffffffffffffffffffffffffff" );
  ]

let test_poly1305_table () =
  List.iter
    (fun (name, key_hex, msg, expected) ->
      check_hex name expected (Poly1305.mac ~key:(hex key_hex) msg))
    poly1305_vectors

(* Poly1305 key generation (§2.6.2 + A.4): the fast path derives the
   one-time key via a direct 32-byte [keystream_into]; the reference
   slices the counter-0 block.  Both must match the RFC. *)
let ref_poly_key ~key ~nonce =
  Bytes.sub (Chacha20_ref.block ~key ~nonce ~counter:0) 0 32

let poly_key_vectors =
  [
    ( "2.6.2",
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f",
      "000000000001020304050607",
      "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646" );
    ( "A.4 #1 (zero)",
      "0000000000000000000000000000000000000000000000000000000000000000",
      "000000000000000000000000",
      "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7" );
    ( "A.4 #2 (key ..01)",
      "0000000000000000000000000000000000000000000000000000000000000001",
      "000000000000000000000002",
      "ecfa254f845f647473d3cb140da9e87606cb33066c447b87bc2666dde3fbb739" );
    ( "A.4 #3 (jabberwock key)",
      "1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dcc806d3f9e4c0a",
      "000000000000000000000002",
      "ae8078856f2f76f952a918f7c4e12912ab9207e65d37ec701a2c80003e235b59" );
  ]

let test_poly_key_table () =
  List.iter
    (fun (name, key_hex, nonce_hex, expected) ->
      let key = hex key_hex and nonce = hex nonce_hex in
      check_hex (name ^ " [fast]") expected (Aead.poly_key ~key ~nonce);
      check_hex (name ^ " [ref]") expected (ref_poly_key ~key ~nonce))
    poly_key_vectors

(* Seed-construction AEAD seal, composed from the retained oracle pieces
   exactly the way the seed [Aead] did it (concat-based mac_data), so the
   appendix vectors pin both implementations. *)
let ref_seal ~key ~nonce ~aad pt =
  let ct = Chacha20_ref.encrypt ~counter:1 ~key ~nonce pt in
  let pad16 n =
    match n mod 16 with 0 -> Bytes.empty | r -> Bytes.make (16 - r) '\000'
  in
  let lens = Bytes.create 16 in
  Bytes_util.store_le64 lens 0 (Bytes.length aad);
  Bytes_util.store_le64 lens 8 (Bytes.length ct);
  let mac_data =
    Bytes_util.concat
      [ aad; pad16 (Bytes.length aad); ct; pad16 (Bytes.length ct); lens ]
  in
  let tag = Poly1305.mac ~key:(ref_poly_key ~key ~nonce) mac_data in
  Bytes_util.concat [ ct; tag ]

(* A.5-direction AEAD vector.  The RFC prints A.5 as a decryption test
   whose plaintext is the "Internet-Drafts are draft documents..."
   boilerplate; this table pins the ct||tag our implementation produces
   for those A.5 inputs (key/nonce/aad from the RFC, reconstructed
   plaintext), cross-checked fast vs seed oracle.  RFC-printed AEAD
   bytes are anchored by the §2.8.2 vector in [test_aead_vector]. *)
let id_text =
  "Internet-Drafts are draft documents valid for a maximum of six \
   months and may be updated, replaced, or obsoleted by other documents \
   at any time. It is inappropriate to use Internet-Drafts as reference \
   material or to cite them other than as \xe2\x80\x9cwork in \
   progress.\xe2\x80\x9d"

let aead_table_vectors =
  [
    ( "A.5-style (id text, 263 B)",
      "1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dcc806d3f9e4c0a",
      "000000000102030405060708", "f33388860000000000004e91",
      Bytes.of_string id_text,
      "55ef6433364c948c5459cb46d856dbc4eb30484d818f339277b8bab37e55ea63\
       f0874f6be668df3a873f43f519dbc6c687bc2ac6d2a3f2b4cee9981108844fe6\
       0dde17d3342c7b4c8583486696a176fca78554115bfefd4a7a1047182195a4f1\
       bc565502e704227be451f3fb044d674c5af2981f17c76983594d9a9da179b755\
       fb14cac1d8024f1e327a78fe80bcaa55d6e698c7f3f56cd6d525a5f7221f82e6\
       ca13b599c0dd3b1d83567c09d229aadf5505eebffd1ddac3e7466ae494300eb9\
       53198568eff0736ff60748eb77a1556f42239b2f98f9ba041ea755283dd7d07a\
       dfe94a818dd9b1df81c2ed491a2328a81c47f9a5e2b5acaefc9ec9032155b546\
       3f5d9374b22c5616d8fc227caee0efc47de62d1984852e" );
  ]

let test_aead_table () =
  List.iter
    (fun (name, key_hex, nonce_hex, aad_hex, pt, expected) ->
      let key = hex key_hex and nonce = hex nonce_hex and aad = hex aad_hex in
      let sealed = Aead.seal ~key ~nonce ~aad pt in
      check_hex (name ^ " [fast]") expected sealed;
      check_hex (name ^ " [ref]") expected (ref_seal ~key ~nonce ~aad pt);
      match Aead.open_ ~key ~nonce ~aad sealed with
      | Some got ->
          Alcotest.(check bool) (name ^ " roundtrip") true (Bytes.equal got pt)
      | None -> Alcotest.fail (name ^ ": open failed"))
    aead_table_vectors

(* §2.8.2 against the seed-composed oracle too (the fast path is pinned
   in [test_aead_vector]). *)
let test_aead_ref_282 () =
  let key = hex "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f" in
  let nonce = hex "070000004041424344454647" in
  let aad = hex "50515253c0c1c2c3c4c5c6c7" in
  check_hex "rfc8439 2.8.2 [ref]"
    "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
     3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
     92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
     3ff4def08e4b7a9de576d26586cec64b61161ae10b594f09e26a7e902ecbd0600691"
    (ref_seal ~key ~nonce ~aad (Bytes.of_string sunscreen))

(* Drbg output pinned byte-for-byte: [generate] now draws keystream
   straight into the result (no over-allocated block buffer + sub), and
   these vectors prove the stream did not move. *)
let test_drbg_pinned () =
  let rng = Drbg.of_string "drbg-pin" in
  check_hex "drbg draw 1 (64 B)"
    "35a2a86b47d595f9fc154d35ddcf277d3b913ffa72b189903d0e82bb9eb5d5d3\
     4f039518228057c7ac55530d1a130b34eeb8c3f05ff455e131c0dae6e660f13b"
    (Drbg.generate rng 64);
  check_hex "drbg draw 2 (100 B, rolled nonce)"
    "a03f65f7837aa1dfe29a7817a16410b12b1fba217e9347586c22926d29dd72d4\
     246caa6b6c8fc4c03655ee4aa7f51b70b3ad609e97bac9076e1c99fc098c4370\
     72079fa4df31c797153dda36cb8feb1e9cf9ac91a6d34fc2f0422c214df79a9f\
     2cf082ce"
    (Drbg.generate rng 100);
  check_hex "drbg fresh seed (32 B)"
    "f9d8a275c4566de3de29b95dec68d64bc41f18dae060f2813975a92d9a77cb95"
    (Drbg.generate (Drbg.of_string "seed") 32)

(* ------------------------------------------------------------------ *)
(* X25519 (RFC 7748)                                                   *)
(* ------------------------------------------------------------------ *)

let test_x25519_vectors () =
  let v1 =
    Curve25519.scalarmult
      ~scalar:(hex "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
      ~point:(hex "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
  in
  check_hex "rfc7748 vector 1"
    "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552" v1;
  let v2 =
    Curve25519.scalarmult
      ~scalar:(hex "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
      ~point:(hex "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
  in
  check_hex "rfc7748 vector 2"
    "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957" v2

let test_x25519_dh () =
  let a_sk = hex "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a" in
  let b_sk = hex "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb" in
  let a_pk = Curve25519.scalarmult_base a_sk in
  let b_pk = Curve25519.scalarmult_base b_sk in
  check_hex "alice pk"
    "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a" a_pk;
  check_hex "bob pk"
    "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f" b_pk;
  let s1 = Curve25519.shared ~secret:a_sk ~public:b_pk in
  let s2 = Curve25519.shared ~secret:b_sk ~public:a_pk in
  check_hex "shared secret"
    "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742" s1;
  check_hex "dh commutes" (Bytes_util.to_hex s1) s2

let test_x25519_iterated () =
  (* RFC 7748 §5.2 iteration test, 1000 rounds. *)
  let k = ref (hex "0900000000000000000000000000000000000000000000000000000000000000") in
  let u = ref !k in
  for i = 1 to 1000 do
    let r = Curve25519.scalarmult ~scalar:!k ~point:!u in
    u := !k;
    k := r;
    if i = 1 then
      check_hex "after 1 iteration"
        "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079" !k
  done;
  check_hex "after 1000 iterations"
    "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51" !k

(* ------------------------------------------------------------------ *)
(* DRBG                                                                *)
(* ------------------------------------------------------------------ *)

let test_drbg_deterministic () =
  let a = Drbg.of_string "seed" and b = Drbg.of_string "seed" in
  check_hex "same seed, same stream"
    (Bytes_util.to_hex (Drbg.generate a 64))
    (Drbg.generate b 64);
  let c = Drbg.of_string "other" in
  Alcotest.(check bool) "different seed differs" false
    (Bytes.equal (Drbg.generate a 64) (Drbg.generate c 64))

let test_drbg_stream_disjoint () =
  let a = Drbg.of_string "seed" in
  let x = Drbg.generate a 32 and y = Drbg.generate a 32 in
  Alcotest.(check bool) "consecutive draws differ" false (Bytes.equal x y)

let test_drbg_uniform_bounds () =
  let rng = Drbg.of_string "uniform" in
  for _ = 1 to 1000 do
    let v = Drbg.uniform ~rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "uniform out of range"
  done;
  let f = Drbg.float_unit ~rng () in
  Alcotest.(check bool) "float in [0,1)" true (f >= 0. && f < 1.)

(* ------------------------------------------------------------------ *)
(* Box                                                                 *)
(* ------------------------------------------------------------------ *)

let test_box_roundtrip () =
  let rng = Drbg.of_string "box" in
  let a_sk, a_pk = Drbg.keypair ~rng () in
  let b_sk, b_pk = Drbg.keypair ~rng () in
  let k1 = Box.precompute ~secret:a_sk ~public:b_pk in
  let k2 = Box.precompute ~secret:b_sk ~public:a_pk in
  check_hex "precompute symmetric" (Bytes_util.to_hex k1) k2;
  let nonce = Aead.nonce_of ~domain:1 ~counter:5 in
  let sealed = Box.seal ~key:k1 ~nonce (Bytes.of_string "hi bob") in
  (match Box.open_ ~key:k2 ~nonce sealed with
  | Some pt -> Alcotest.(check string) "box roundtrip" "hi bob" (Bytes.to_string pt)
  | None -> Alcotest.fail "box open failed")

let test_sealed_box () =
  let rng = Drbg.of_string "sealed" in
  let sk, pk = Drbg.keypair ~rng () in
  let sealed = Box.seal_anonymous ~rng ~recipient_pk:pk (Bytes.of_string "invite") in
  Alcotest.(check int) "anonymous overhead" (6 + Box.anonymous_overhead)
    (Bytes.length sealed);
  (match Box.open_anonymous ~recipient_sk:sk ~recipient_pk:pk sealed with
  | Some pt -> Alcotest.(check string) "sealed roundtrip" "invite" (Bytes.to_string pt)
  | None -> Alcotest.fail "sealed open failed");
  (* The wrong recipient's trial decryption must fail. *)
  let sk2, pk2 = Drbg.keypair ~rng () in
  Alcotest.(check bool) "wrong recipient fails" true
    (Box.open_anonymous ~recipient_sk:sk2 ~recipient_pk:pk2 sealed = None)

(* An 80-byte paper invitation = 32-byte payload + sealed-box overhead. *)
let test_invitation_size () =
  Alcotest.(check int) "invitation is 80 bytes" 80 (32 + Box.anonymous_overhead)

(* ------------------------------------------------------------------ *)
(* Bytes_util                                                          *)
(* ------------------------------------------------------------------ *)

let test_hex_roundtrip () =
  let b = Drbg.generate (Drbg.of_string "hex") 57 in
  check_hex "roundtrip" (Bytes_util.to_hex b) (Bytes_util.of_hex (Bytes_util.to_hex b));
  Alcotest.check_raises "odd length" (Invalid_argument "Bytes_util.of_hex: odd length")
    (fun () -> ignore (Bytes_util.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Bytes_util.of_hex: bad digit")
    (fun () -> ignore (Bytes_util.of_hex "zz"))

let test_endian () =
  let b = Bytes.create 8 in
  Bytes_util.store_le64 b 0 0x1122334455667788;
  Alcotest.(check int) "le64 roundtrip" 0x1122334455667788 (Bytes_util.le64 b 0);
  Alcotest.(check int) "le32" 0x55667788 (Bytes_util.le32 b 0);
  Bytes_util.store_be32 b 0 0xdeadbeef;
  Alcotest.(check int) "be32 roundtrip" 0xdeadbeef (Bytes_util.be32 b 0)

let test_ct_equal () =
  Alcotest.(check bool) "equal" true
    (Bytes_util.ct_equal (Bytes.of_string "abc") (Bytes.of_string "abc"));
  Alcotest.(check bool) "unequal" false
    (Bytes_util.ct_equal (Bytes.of_string "abc") (Bytes.of_string "abd"));
  Alcotest.(check bool) "length mismatch" false
    (Bytes_util.ct_equal (Bytes.of_string "ab") (Bytes.of_string "abc"))

let test_pad_to () =
  let p = Bytes_util.pad_to 5 (Bytes.of_string "ab") in
  Alcotest.(check string) "padded" "ab\000\000\000" (Bytes.to_string p);
  Alcotest.check_raises "too long" (Invalid_argument "Bytes_util.pad_to: too long")
    (fun () -> ignore (Bytes_util.pad_to 1 (Bytes.of_string "ab")))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_props =
  let open QCheck in
  let bytes_gen n = Gen.map Bytes.of_string (Gen.string_size (Gen.return n)) in
  let arb_msg = make ~print:(fun b -> Bytes_util.to_hex b)
      (Gen.map Bytes.of_string Gen.(string_size (int_bound 300))) in
  [
    Test.make ~name:"aead seal/open roundtrip" ~count:100 arb_msg (fun msg ->
        let key = Bytes.make 32 '\x42' in
        let nonce = Aead.nonce_of ~domain:0 ~counter:1 in
        match Aead.open_ ~key ~nonce (Aead.seal ~key ~nonce msg) with
        | Some pt -> Bytes.equal pt msg
        | None -> false);
    Test.make ~name:"aead: wrong key never opens" ~count:50 arb_msg (fun msg ->
        let key = Bytes.make 32 '\x42' and key' = Bytes.make 32 '\x43' in
        let nonce = Aead.nonce_of ~domain:0 ~counter:1 in
        Aead.open_ ~key:key' ~nonce (Aead.seal ~key ~nonce msg) = None);
    Test.make ~name:"chacha20 encrypt is an involution" ~count:100 arb_msg
      (fun msg ->
        let key = Bytes.make 32 '\x24' in
        let nonce = Bytes.make 12 '\x05' in
        Bytes.equal msg (Chacha20.decrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce msg)));
    Test.make ~name:"x25519 dh commutes" ~count:10
      (make (Gen.pair (bytes_gen 32) (bytes_gen 32)))
      (fun (a, b) ->
        let a_pk = Curve25519.scalarmult_base a in
        let b_pk = Curve25519.scalarmult_base b in
        Bytes.equal
          (Curve25519.shared ~secret:a ~public:b_pk)
          (Curve25519.shared ~secret:b ~public:a_pk));
    Test.make ~name:"sealed box roundtrip" ~count:25 arb_msg (fun msg ->
        let rng = Drbg.of_string "prop-sealed" in
        let sk, pk = Drbg.keypair ~rng () in
        match
          Box.open_anonymous ~recipient_sk:sk ~recipient_pk:pk
            (Box.seal_anonymous ~rng ~recipient_pk:pk msg)
        with
        | Some pt -> Bytes.equal pt msg
        | None -> false);
    Test.make ~name:"hex roundtrip" ~count:100 arb_msg (fun b ->
        Bytes.equal b (Bytes_util.of_hex (Bytes_util.to_hex b)));
    Test.make ~name:"hmac differs on tampered data" ~count:50
      (make (Gen.map Bytes.of_string Gen.(string_size (int_range 1 100))))
      (fun data ->
        let key = Bytes.of_string "k" in
        let tampered = Bytes.copy data in
        Bytes.set tampered 0 (Char.chr (Char.code (Bytes.get data 0) lxor 1));
        not (Bytes.equal (Hmac.sha256 ~key data) (Hmac.sha256 ~key tampered)));
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "crypto",
    [
      tc "sha256 vectors" `Quick test_sha256_vectors;
      tc "sha256 incremental" `Quick test_sha256_incremental;
      tc "sha256 get nondestructive" `Quick test_sha256_get_nondestructive;
      tc "hmac vectors" `Quick test_hmac_vectors;
      tc "hmac verify" `Quick test_hmac_verify;
      tc "hkdf vectors" `Quick test_hkdf_vectors;
      tc "chacha20 block" `Quick test_chacha20_block;
      tc "chacha20 encrypt" `Quick test_chacha20_encrypt;
      tc "poly1305 vector" `Quick test_poly1305_vector;
      tc "poly1305 incremental" `Quick test_poly1305_incremental;
      tc "poly1305 wrap edge" `Quick test_poly1305_edge;
      tc "aead vector + tamper sweep" `Quick test_aead_vector;
      tc "aead wrong aad" `Quick test_aead_wrong_aad;
      tc "chacha20 block table (A.1, fast+ref)" `Quick
        test_chacha20_block_table;
      tc "chacha20 encrypt table (A.2, fast+ref)" `Quick
        test_chacha20_encrypt_table;
      tc "poly1305 table (A.3)" `Quick test_poly1305_table;
      tc "poly key table (2.6.2 + A.4, fast+ref)" `Quick
        test_poly_key_table;
      tc "aead table (A.5-style, fast+ref)" `Quick test_aead_table;
      tc "aead 2.8.2 against ref oracle" `Quick test_aead_ref_282;
      tc "drbg pinned output" `Quick test_drbg_pinned;
      tc "x25519 vectors" `Quick test_x25519_vectors;
      tc "x25519 diffie-hellman" `Quick test_x25519_dh;
      tc "x25519 iterated (1000)" `Slow test_x25519_iterated;
      tc "drbg deterministic" `Quick test_drbg_deterministic;
      tc "drbg stream disjoint" `Quick test_drbg_stream_disjoint;
      tc "drbg uniform bounds" `Quick test_drbg_uniform_bounds;
      tc "box roundtrip" `Quick test_box_roundtrip;
      tc "sealed box" `Quick test_sealed_box;
      tc "invitation size" `Quick test_invitation_size;
      tc "hex roundtrip" `Quick test_hex_roundtrip;
      tc "endian helpers" `Quick test_endian;
      tc "constant-time equal" `Quick test_ct_equal;
      tc "pad_to" `Quick test_pad_to;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )

(* ------------------------------------------------------------------ *)
(* Fe25519 field algebra                                               *)
(* ------------------------------------------------------------------ *)

(* Direct algebraic properties of the shared field arithmetic that both
   X25519 and Ed25519 stand on. *)
let fe_suite =
  let open QCheck in
  let arb_fe =
    make
      ~print:(fun a -> Bytes_util.to_hex (Fe25519.pack a))
      (Gen.map
         (fun s -> Fe25519.unpack (Bytes.of_string s))
         Gen.(string_size (return 32)))
  in
  let eq = Fe25519.equal in
  [
    QCheck.Test.make ~name:"fe: mul commutes" ~count:100 (pair arb_fe arb_fe)
      (fun (a, b) ->
        let x = Fe25519.create () and y = Fe25519.create () in
        Fe25519.mul x a b;
        Fe25519.mul y b a;
        eq x y);
    QCheck.Test.make ~name:"fe: mul associates" ~count:100
      (triple arb_fe arb_fe arb_fe) (fun (a, b, c) ->
        let ab = Fe25519.create ()
        and bc = Fe25519.create ()
        and l = Fe25519.create ()
        and r = Fe25519.create () in
        Fe25519.mul ab a b;
        Fe25519.mul l ab c;
        Fe25519.mul bc b c;
        Fe25519.mul r a bc;
        eq l r);
    QCheck.Test.make ~name:"fe: distributivity" ~count:100
      (triple arb_fe arb_fe arb_fe) (fun (a, b, c) ->
        let bc = Fe25519.create ()
        and l = Fe25519.create ()
        and ab = Fe25519.create ()
        and ac = Fe25519.create ()
        and r = Fe25519.create () in
        Fe25519.add bc b c;
        Fe25519.mul l a bc;
        Fe25519.mul ab a b;
        Fe25519.mul ac a c;
        Fe25519.add r ab ac;
        Fe25519.carry r;
        eq l r);
    QCheck.Test.make ~name:"fe: a * a^-1 = 1 (a <> 0)" ~count:50 arb_fe
      (fun a ->
        let zero = Fe25519.zero () in
        if eq a zero then true
        else begin
          let inv = Fe25519.create () and prod = Fe25519.create () in
          Fe25519.invert inv a;
          Fe25519.mul prod a inv;
          eq prod (Fe25519.one ())
        end);
    QCheck.Test.make ~name:"fe: pack/unpack roundtrip is canonical"
      ~count:100 arb_fe (fun a ->
        let packed = Fe25519.pack a in
        Bytes.equal packed (Fe25519.pack (Fe25519.unpack packed)));
    QCheck.Test.make ~name:"fe: square = mul self" ~count:100 arb_fe
      (fun a ->
        let s = Fe25519.create () and m = Fe25519.create () in
        Fe25519.square s a;
        Fe25519.mul m a a;
        eq s m);
  ]
  |> List.map (QCheck_alcotest.to_alcotest ~long:false)

let suite = (fst suite, snd suite @ fe_suite)
