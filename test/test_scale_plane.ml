(* Scale-plane units: the streaming entry collector's memory bound, the
   stable bloom filter's sizing and classic-mode behaviour, the O(1)
   dead-drop/invitation counters, and the vectorized load generator
   driven end to end through a real in-process chain.  The bit-parity
   claims (sharded ≡ monolithic, streamed ≡ materialized) live in the
   transcript pins and the property suite; here we check the resource
   claims those planes exist for. *)

open Vuvuzela_dp
open Vuvuzela
module Loadgen = Vuvuzela_loadgen.Loadgen

(* ------------------------------------------------------------------ *)
(* Streaming entry collector: peak buffering bounded by the chunk      *)
(* ------------------------------------------------------------------ *)

let test_streaming_peak_bound () =
  let n = 100 and chunk = 8 in
  let received = ref [] in
  let entry =
    Entry.create_streaming ~round:1 ~chunk
      ~sink:(fun parts -> received := parts :: !received)
      ()
  in
  for i = 0 to n - 1 do
    match Entry.submit entry i (Bytes.make 4 (Char.chr (i land 0xff))) with
    | Entry.Accepted -> ()
    | Entry.Late _ -> Alcotest.fail "open stream rejected a submit"
  done;
  let ids = Entry.close_stream entry in
  Alcotest.(check int) "all clients got slots" n (Array.length ids);
  Alcotest.(check bool)
    (Printf.sprintf "peak buffered (%d) <= chunk (%d)"
       (Entry.peak_buffered entry) chunk)
    true
    (Entry.peak_buffered entry <= chunk);
  (* The sink saw every request, in slot order, in chunk-bounded parts. *)
  let parts = List.rev !received in
  List.iter
    (fun p -> Alcotest.(check bool) "part <= chunk" true (Array.length p <= chunk))
    parts;
  let flat = Array.concat parts in
  Alcotest.(check int) "sink saw the whole batch" n (Array.length flat);
  Array.iteri
    (fun i b ->
      Alcotest.(check char) "slot order preserved"
        (Char.chr (i land 0xff)) (Bytes.get b 0))
    flat;
  (* A materializing collector's peak is its size: the thing the
     streaming mode exists to avoid. *)
  let mat = Entry.create ~round:1 () in
  for i = 0 to n - 1 do
    ignore (Entry.submit mat i (Bytes.create 4))
  done;
  Alcotest.(check int) "materializing peak = population" n
    (Entry.peak_buffered mat)

(* The bound is population-independent: 10x the clients, same peak. *)
let test_streaming_peak_population_independent () =
  let chunk = 16 in
  let peak_at n =
    let entry = Entry.create_streaming ~chunk ~sink:(fun _ -> ()) () in
    for i = 0 to n - 1 do
      ignore (Entry.submit entry i (Bytes.create 1))
    done;
    ignore (Entry.close_stream entry);
    Entry.peak_buffered entry
  in
  let p1 = peak_at 200 and p2 = peak_at 2000 in
  Alcotest.(check int) "peak unchanged across populations" p1 p2;
  Alcotest.(check bool) "peak <= chunk" true (p1 <= chunk)

(* ------------------------------------------------------------------ *)
(* Stable bloom filter: sizing, classic (decay 0) behaviour            *)
(* ------------------------------------------------------------------ *)

let test_bloom_sizing () =
  let f = Stable_bloom.create ~capacity:1000 ~fp:0.01 () in
  Alcotest.(check bool) "bits sized for capacity" true
    (Stable_bloom.bits f >= 1000);
  Alcotest.(check bool) "several hash functions" true
    (Stable_bloom.hashes f >= 2);
  Alcotest.(check (float 1e-9)) "fp echoed" 0.01 (Stable_bloom.fp_rate f);
  Alcotest.(check int) "fresh filter has no inserts" 0
    (Stable_bloom.inserts f)

let test_bloom_classic_no_false_negatives () =
  (* decay 0 = a classic Bloom filter: membership is permanent, so
     every inserted element queries true however many follow it. *)
  let f = Stable_bloom.create ~seed:"classic" ~decay:0 ~capacity:256 ~fp:0.01 () in
  let elt i = Bytes.of_string (Printf.sprintf "member-%04d" i) in
  for i = 0 to 255 do
    Stable_bloom.insert f (elt i)
  done;
  Alcotest.(check int) "insert counter" 256 (Stable_bloom.inserts f);
  for i = 0 to 255 do
    Alcotest.(check bool)
      (Printf.sprintf "member %d still present" i)
      true
      (Stable_bloom.query f (elt i))
  done

(* ------------------------------------------------------------------ *)
(* O(1) counters agree with the data they summarize                    *)
(* ------------------------------------------------------------------ *)

let drop_id c = Bytes.make Types.drop_id_len c
let sealed c = Bytes.make Types.sealed_message_len c

let test_histogram_counts () =
  let d = Deaddrop.create () in
  (* One lone drop, one pair, one triple: m1/m2/m_more = 1/1/1. *)
  Deaddrop.put d ~slot:0 ~drop_id:(drop_id 'a') ~sealed:(sealed 'A');
  Deaddrop.put d ~slot:1 ~drop_id:(drop_id 'b') ~sealed:(sealed 'B');
  Deaddrop.put d ~slot:2 ~drop_id:(drop_id 'b') ~sealed:(sealed 'C');
  Deaddrop.put d ~slot:3 ~drop_id:(drop_id 'c') ~sealed:(sealed 'D');
  Deaddrop.put d ~slot:4 ~drop_id:(drop_id 'c') ~sealed:(sealed 'E');
  Deaddrop.put d ~slot:5 ~drop_id:(drop_id 'c') ~sealed:(sealed 'F');
  let h = Deaddrop.histogram d in
  Alcotest.(check int) "m1" 1 h.Deaddrop.m1;
  Alcotest.(check int) "m2" 1 h.Deaddrop.m2;
  Alcotest.(check int) "m_more" 1 h.Deaddrop.m_more;
  (* Sharded store sums per-shard counts to the same observables. *)
  let s = Deaddrop.Sharded.create ~shards:4 () in
  List.iter
    (fun (slot, id, body) -> Deaddrop.Sharded.put s ~slot ~drop_id:id ~sealed:body)
    [
      (0, drop_id 'a', sealed 'A');
      (1, drop_id 'b', sealed 'B');
      (2, drop_id 'b', sealed 'C');
      (3, drop_id 'c', sealed 'D');
      (4, drop_id 'c', sealed 'E');
      (5, drop_id 'c', sealed 'F');
    ];
  let hs = Deaddrop.Sharded.histogram s in
  Alcotest.(check int) "sharded m1" 1 hs.Deaddrop.m1;
  Alcotest.(check int) "sharded m2" 1 hs.Deaddrop.m2;
  Alcotest.(check int) "sharded m_more" 1 hs.Deaddrop.m_more;
  Alcotest.(check int) "sharded access count" 6
    (Deaddrop.Sharded.total_accesses s)

let test_invitation_size_counts () =
  let store = Deaddrop.Invitation.create ~m:8 in
  let inv i = Bytes.of_string (Printf.sprintf "invitation-%d" i) in
  for i = 0 to 19 do
    Deaddrop.Invitation.put store ~index:(i mod 3) (inv i)
  done;
  for index = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "size at index %d = fetch length" index)
      (List.length (Deaddrop.Invitation.fetch store ~index))
      (Deaddrop.Invitation.size store ~index)
  done;
  Alcotest.(check int) "total = sum of sizes" 20
    (Deaddrop.Invitation.total store)

(* ------------------------------------------------------------------ *)
(* Loadgen: a real population through a real chain, streamed entry     *)
(* ------------------------------------------------------------------ *)

let test_loadgen_round_trip () =
  let chain =
    Chain.of_config
      Config.(
        default |> with_seed "scale-plane-loadgen" |> with_n_servers 3
        |> with_noise (Laplace.params ~mu:3. ~b:1.)
        |> with_noise_mode Noise.Deterministic |> with_deaddrop_shards 4)
  in
  Fun.protect
    ~finally:(fun () -> Chain.shutdown chain)
    (fun () ->
      let server_pks = Chain.public_keys chain in
      (* Odd population: 16 conversing pairs plus one cover-only loner. *)
      let pop = Loadgen.create ~seed:"lg-unit" ~n:33 () in
      Alcotest.(check int) "pairs" 16 (Loadgen.pairs pop);
      for round = 1 to 2 do
        let replies =
          match
            Chain.conversation_round_streamed chain ~round
              ~produce:(fun feed ->
                Loadgen.feed_conversation pop ~round ~server_pks ~chunk:7
                  ~sink:feed)
          with
          | Ok replies -> replies
          | Error st ->
              Alcotest.failf "round %d: %a" round Rpc.pp_status st
        in
        let d = Loadgen.verify pop ~round replies in
        Alcotest.(check int)
          (Printf.sprintf "round %d: every pair exchanged" round)
          d.Loadgen.expected d.Loadgen.delivered;
        Alcotest.(check int)
          (Printf.sprintf "round %d: loner saw the empty result" round)
          1 d.Loadgen.lone
      done;
      (* The materialized batch is the chunk concatenation. *)
      let streamed = ref [] in
      Loadgen.feed_conversation pop ~round:3 ~server_pks ~chunk:5
        ~sink:(fun part -> streamed := part :: !streamed);
      let pop2 = Loadgen.create ~seed:"lg-unit" ~n:33 () in
      for round = 1 to 2 do
        ignore (Loadgen.conversation_onions pop2 ~round ~server_pks)
      done;
      let materialized =
        Loadgen.conversation_onions pop2 ~round:3 ~server_pks
      in
      let flat = Array.concat (List.rev !streamed) in
      Alcotest.(check int) "same batch size" (Array.length materialized)
        (Array.length flat);
      Array.iteri
        (fun i onion ->
          Alcotest.(check bool)
            (Printf.sprintf "onion %d bit-identical" i)
            true
            (Bytes.equal onion materialized.(i)))
        flat)

(* ------------------------------------------------------------------ *)
(* Network supervisor: streaming entry reports a chunk-bounded peak    *)
(* ------------------------------------------------------------------ *)

let test_network_streaming_round () =
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "net-streaming"
        |> with_noise (Laplace.params ~mu:3. ~b:1.)
        |> with_noise_mode Noise.Deterministic
        |> with_pipeline ~chunk:2 true |> with_entry_streaming true)
  in
  Fun.protect
    ~finally:(fun () -> Network.shutdown net)
    (fun () ->
      Alcotest.(check bool) "streaming on" true (Network.entry_streaming net);
      let a = Network.connect ~seed:"sa" net in
      let b = Network.connect ~seed:"sb" net in
      let c = Network.connect ~seed:"sc" net in
      let d = Network.connect ~seed:"sd" net in
      Client.start_conversation a ~peer_pk:(Client.public_key b);
      Client.start_conversation b ~peer_pk:(Client.public_key a);
      Client.start_conversation c ~peer_pk:(Client.public_key d);
      Client.start_conversation d ~peer_pk:(Client.public_key c);
      Client.send a "streamed hello";
      let report = Network.run ~kind:Round.Conversation net in
      Alcotest.(check int) "all four in the round" 4
        report.Network.batch_size;
      Alcotest.(check bool)
        (Printf.sprintf "peak buffered (%d) <= entry chunk (%d)"
           report.Network.peak_buffered (Network.entry_chunk net))
        true
        (report.Network.peak_buffered <= Network.entry_chunk net);
      let delivered =
        List.exists
          (fun (cl, evs) ->
            cl == b
            && List.exists
                 (function
                   | Client.Delivered { text; _ } -> text = "streamed hello"
                   | _ -> false)
                 evs)
          report.Network.events
      in
      Alcotest.(check bool) "message delivered through streamed entry" true
        delivered)

(* ------------------------------------------------------------------ *)
(* Bloom prefilter end to end: the real invitation still arrives       *)
(* ------------------------------------------------------------------ *)

let test_cdn_prefilter_delivery () =
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "net-bloom"
        |> with_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_noise_mode Noise.Deterministic |> with_cdn_edges 2
        |> with_cdn_bloom_fp 0.02)
  in
  Fun.protect
    ~finally:(fun () -> Network.shutdown net)
    (fun () ->
      let a = Network.connect ~seed:"ba" net in
      let b = Network.connect ~seed:"bb" net in
      let _extras =
        List.init 6 (fun i -> Network.connect ~seed:(Printf.sprintf "bx%d" i) net)
      in
      Network.set_invitation_drops net 4;
      Client.dial a ~callee_pk:(Client.public_key b);
      let events = (Network.run ~kind:Round.Dialing net).Network.events in
      let called =
        List.exists
          (fun (c, evs) ->
            c == b
            && List.exists
                 (function Client.Incoming_call _ -> true | _ -> false)
                 evs)
          events
      in
      Alcotest.(check bool) "call delivered through the prefilter" true called;
      match Network.cdn_stats net with
      | None -> Alcotest.fail "cdn stats missing"
      | Some s ->
          (* Every client probed all m=4 buckets through the filter; the
             real subscription always matched (no false negatives by
             construction), so at least one bucket was served per
             client. *)
          Alcotest.(check bool) "prefilter consulted" true
            (s.Cdn.prefilter_tested > 0);
          Alcotest.(check bool) "prefilter served every own bucket" true
            (s.Cdn.prefilter_served >= 8))

let suite =
  ( "scale-plane",
    [
      Alcotest.test_case "streaming entry peak bounded by chunk" `Quick
        test_streaming_peak_bound;
      Alcotest.test_case "streaming peak population-independent" `Quick
        test_streaming_peak_population_independent;
      Alcotest.test_case "stable bloom sizing" `Quick test_bloom_sizing;
      Alcotest.test_case "stable bloom classic mode" `Quick
        test_bloom_classic_no_false_negatives;
      Alcotest.test_case "O(1) histogram counts" `Quick test_histogram_counts;
      Alcotest.test_case "O(1) invitation sizes" `Quick
        test_invitation_size_counts;
      Alcotest.test_case "loadgen round trip through a chain" `Quick
        test_loadgen_round_trip;
      Alcotest.test_case "supervisor streaming round" `Quick
        test_network_streaming_round;
      Alcotest.test_case "cdn bloom prefilter delivery" `Quick
        test_cdn_prefilter_delivery;
    ] )
