(* Telemetry smoke test: a tiny seeded deployment runs a 3-round
   schedule (with one dialing round) under a live sink, exports the
   span trace as JSONL, and validates it — schema check, full six-stage
   coverage for every (round, server) pair, client spans present, and a
   monotone budget ledger.  Fails loudly; no Alcotest machinery.

   The run also collects an observability directory ([SMOKE_OBS_DIR],
   default [smoke-obs/] in the cwd): merged trace, metrics exposition,
   round events and the rendered digest — CI uploads it as the build's
   trace artifact. *)

open Vuvuzela_dp
open Vuvuzela
module T = Vuvuzela_telemetry

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("SMOKE FAIL: " ^ s); exit 1) fmt

let () =
  let tel = T.Telemetry.create () in
  let obs_dir =
    match Sys.getenv_opt "SMOKE_OBS_DIR" with
    | Some d when d <> "" -> d
    | _ -> "smoke-obs"
  in
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "smoke"
        |> with_noise (Laplace.params ~mu:3. ~b:1.)
        |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_noise_mode Noise.Sampled |> with_telemetry tel
        |> with_budget_warn 1.0 |> with_obs_dir obs_dir)
  in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  Client.send a "smoke";
  let reports = Network.run_schedule ~dial_every:3 net ~rounds:3 in
  Network.shutdown net;
  if List.exists (fun r -> r.Network.failure <> None) reports then
    fail "a round failed";

  (* The exported JSONL passes the schema checker. *)
  let jsonl = T.Trace.to_jsonl (T.Telemetry.trace tel) in
  (match T.Trace.validate_jsonl jsonl with
  | Ok () -> ()
  | Error e -> fail "trace schema: %s" e);

  (* Every (round, server) pair shows all six pipeline stages. *)
  let spans = T.Trace.spans (T.Telemetry.trace tel) in
  List.iter
    (fun r ->
      let round = r.Network.round and dialing = r.Network.dialing in
      for server = 0 to 2 do
        List.iter
          (fun stage ->
            if
              not
                (List.exists
                   (fun sp ->
                     sp.T.Trace.name = stage && sp.T.Trace.round = round
                     && sp.T.Trace.server = server
                     && sp.T.Trace.dialing = dialing)
                   spans)
            then fail "round %d server %d missing stage %s" round server stage)
          T.Telemetry.server_stages
      done)
    reports;

  (* The ledger charged every round and stayed monotone from zero. *)
  (match T.Telemetry.ledger tel with
  | None -> fail "no budget ledger"
  | Some ledger ->
      let conv, dial = T.Ledger.rounds ledger ~client:(Client.public_key a) in
      if (conv, dial) <> (3, 1) then
        fail "ledger charged (%d, %d) rounds, expected (3, 1)" conv dial;
      let w = T.Ledger.worst ledger in
      if not (w.Mechanism.eps > 0. && w.Mechanism.delta > 0.) then
        fail "budget spend not positive");

  (* Shutdown finalized the observability directory: the merged trace
     must validate on its own and the digest must render — this is the
     artifact CI uploads. *)
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let merged = Filename.concat obs_dir "merged-trace.jsonl" in
  if not (Sys.file_exists merged) then fail "%s not written" merged;
  (match T.Trace.validate_jsonl (read_file merged) with
  | Ok () -> ()
  | Error e -> fail "merged trace schema: %s" e);
  (match Obs.render_digest ~dir:obs_dir with
  | Ok digest when String.length digest > 0 -> ()
  | Ok _ -> fail "empty digest"
  | Error e -> fail "digest: %s" e);

  Printf.printf "smoke: %d spans across %d rounds, trace schema OK\n"
    (T.Trace.span_count (T.Telemetry.trace tel))
    (List.length reports);
  Printf.printf "smoke: observability artifact in %s\n" obs_dir
