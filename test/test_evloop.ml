(* The event loop's dispatch-safety contract, exercised at its edges:
   handlers may mutate the fd and timer tables from inside callbacks,
   [run_until] must report deadline expiry, and the 100 ms select cap
   must never delay a nearer timer. *)

module Evloop = Vuvuzela_transport.Evloop
module Clock = Vuvuzela_transport.Clock

(* A timer registered from inside a firing timer waits for the next
   dispatch round — it must not fire in the same [fire_due] pass (that
   would make a 0 ms self-rearming timer an infinite loop). *)
let test_timer_registered_in_callback () =
  let loop = Evloop.create () in
  let order = ref [] in
  ignore
    (Evloop.after loop ~ms:0. (fun () ->
         order := "outer" :: !order;
         ignore
           (Evloop.after loop ~ms:0. (fun () -> order := "inner" :: !order))));
  Evloop.run_once ~max_wait_ms:5. loop;
  Alcotest.(check (list string))
    "inner deferred to the next round" [ "outer" ] (List.rev !order);
  Evloop.run_once ~max_wait_ms:5. loop;
  Alcotest.(check (list string))
    "inner fired on the next round" [ "outer"; "inner" ] (List.rev !order)

(* A pending (not-yet-due) timer cancelled from inside a callback never
   fires. *)
let test_timer_cancelled_in_callback () =
  let loop = Evloop.create () in
  let fired = ref false in
  let victim = ref (-1) in
  ignore (Evloop.after loop ~ms:0. (fun () -> Evloop.cancel loop !victim));
  victim := Evloop.after loop ~ms:20. (fun () -> fired := true);
  ignore (Evloop.run_until ~deadline_ms:80. loop (fun () -> false));
  Alcotest.(check bool) "cancelled timer stayed dead" false !fired

(* Timers fire in fire-at order regardless of registration order. *)
let test_timer_order () =
  let loop = Evloop.create () in
  let order = ref [] in
  ignore (Evloop.after loop ~ms:15. (fun () -> order := "late" :: !order));
  ignore (Evloop.after loop ~ms:2. (fun () -> order := "early" :: !order));
  ignore
    (Evloop.run_until ~deadline_ms:200. loop (fun () ->
         List.length !order = 2));
  Alcotest.(check (list string))
    "fire-at order" [ "early"; "late" ] (List.rev !order)

(* [run_until] with a predicate that never holds returns [false] only
   after the deadline actually elapsed. *)
let test_run_until_deadline () =
  let loop = Evloop.create () in
  let t0 = Clock.now_ms () in
  let r = Evloop.run_until ~deadline_ms:50. loop (fun () -> false) in
  let elapsed = Clock.elapsed_ms ~since:t0 in
  Alcotest.(check bool) "deadline reported as false" false r;
  if elapsed < 45. then
    Alcotest.failf "run_until returned after %.1f ms (deadline 50)" elapsed;
  (* ... and an immediately-true predicate returns without waiting. *)
  let t0 = Clock.now_ms () in
  let r = Evloop.run_until ~deadline_ms:5_000. loop (fun () -> true) in
  Alcotest.(check bool) "immediate predicate" true r;
  if Clock.elapsed_ms ~since:t0 > 1_000. then
    Alcotest.fail "true predicate still waited"

(* Two fds ready in the same select round, each handler removing the
   other: exactly one handler may run — the dispatch loop must re-check
   registration, never invoke a freshly removed fd's handler. *)
let test_fd_removed_mid_dispatch () =
  let loop = Evloop.create () in
  let a_out, a_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let b_out, b_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a_out; a_in; b_out; b_in ])
    (fun () ->
      let calls = ref 0 in
      Evloop.add_fd loop a_in
        ~on_readable:(fun () ->
          incr calls;
          Evloop.remove_fd loop b_in)
        ~on_writable:ignore;
      Evloop.add_fd loop b_in
        ~on_readable:(fun () ->
          incr calls;
          Evloop.remove_fd loop a_in)
        ~on_writable:ignore;
      (* make both readable before the select round *)
      ignore (Unix.write a_out (Bytes.of_string "x") 0 1);
      ignore (Unix.write b_out (Bytes.of_string "x") 0 1);
      Evloop.run_once ~max_wait_ms:200. loop;
      Alcotest.(check int) "exactly one handler ran" 1 !calls;
      (* the survivor keeps working on the next round *)
      Evloop.run_once ~max_wait_ms:50. loop;
      Alcotest.(check int) "removed fd never dispatched" 2 !calls)

(* A 30 ms timer with no [max_wait_ms] must preempt the 100 ms default
   select cap: the loop sleeps until the timer, not the cap. *)
let test_timer_precision_under_select_cap () =
  let loop = Evloop.create () in
  let fired = ref false in
  ignore (Evloop.after loop ~ms:30. (fun () -> fired := true));
  let t0 = Clock.now_ms () in
  while (not !fired) && Clock.elapsed_ms ~since:t0 < 500. do
    Evloop.run_once loop
  done;
  let elapsed = Clock.elapsed_ms ~since:t0 in
  Alcotest.(check bool) "timer fired" true !fired;
  if elapsed < 25. then
    Alcotest.failf "timer fired %.1f ms early" (30. -. elapsed);
  if elapsed > 90. then
    Alcotest.failf
      "timer took %.1f ms — the 100 ms select cap swallowed a 30 ms timer"
      elapsed

let suite =
  ( "evloop",
    [
      Alcotest.test_case "timer registered inside a callback" `Quick
        test_timer_registered_in_callback;
      Alcotest.test_case "timer cancelled inside a callback" `Quick
        test_timer_cancelled_in_callback;
      Alcotest.test_case "timers fire in fire-at order" `Quick
        test_timer_order;
      Alcotest.test_case "run_until deadline returns false" `Quick
        test_run_until_deadline;
      Alcotest.test_case "fd removed during dispatch" `Quick
        test_fd_removed_mid_dispatch;
      Alcotest.test_case "timer precision under the select cap" `Quick
        test_timer_precision_under_select_cap;
    ] )
