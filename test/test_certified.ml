(* Certified dialing end to end (§9 PKI extension): a deployment where
   every invitation carries a verifiable caller certificate. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela

let make_net () =
  Network.of_config
    Network.Config.(
      default |> with_seed "certified-net"
      |> with_noise (Laplace.params ~mu:3. ~b:1.)
      |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
      |> with_noise_mode Noise.Deterministic
      |> with_dial_kind Dialing.Certified)

let signing_identity seed = Ed25519.keypair ~rng:(Drbg.of_string seed) ()

let test_certified_call_end_to_end () =
  let net = make_net () in
  let alice_sk, alice_signing_pk = signing_identity "alice-signer" in
  let alice =
    Network.connect ~seed:"alice"
      ~certified:{ Client.signing_sk = alice_sk; name = "alice"; validity = 5 }
      net
  in
  let bob = Network.connect ~seed:"bob" net in
  let _idle =
    Network.connect ~seed:"idle"
      ~certified:
        { Client.signing_sk = fst (signing_identity "idle-signer");
          name = "idle"; validity = 5 }
      net
  in
  Client.dial alice ~callee_pk:(Client.public_key bob);
  let events = (Network.run ~kind:Round.Dialing net).Network.events in
  match events with
  | [ (c, [ Client.Incoming_call { caller; certificate = Some cert } ]) ] ->
      Alcotest.(check bool) "callee is bob" true (c == bob);
      Alcotest.(check string) "caller key"
        (Bytes_util.to_hex (Client.public_key alice))
        (Bytes_util.to_hex caller);
      (* Bob verifies under his trust store (he knows alice's signing
         key out of band). *)
      (match
         Certificate.verify ~now:1
           ~trusted:(fun k -> Bytes.equal k alice_signing_pk)
           cert
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "valid cert rejected: %a" Certificate.pp_error e);
      Alcotest.(check bool) "name binds" true
        (Certificate.matches_name cert "alice");
      Alcotest.(check bool) "cert covers the caller key" true
        (Bytes.equal cert.Certificate.subject_pk caller);
      (* A different trust store rejects it. *)
      (match Certificate.verify ~now:1 ~trusted:(fun _ -> false) cert with
      | Error Certificate.Untrusted_issuer -> ()
      | _ -> Alcotest.fail "untrusted issuer accepted")
  | [ (_, evs) ] -> Alcotest.failf "unexpected events: %d" (List.length evs)
  | l -> Alcotest.failf "expected exactly one ringing client, got %d" (List.length l)

let test_certified_sizes_uniform () =
  (* Real certified invitations, no-ops, and noise are the same size on
     the wire, so the last server's drops are uniform blobs. *)
  let rng = Drbg.of_string "cert-sizes" in
  let id = Types.identity_of_seed (Bytes.of_string "size-id") in
  let sk, _ = signing_identity "size-signer" in
  let cert =
    Certificate.self_signed ~signing_sk:sk ~conversation_pk:id.Types.public
      ~name:"n" ~expires:10
  in
  let callee = Types.identity_of_seed (Bytes.of_string "size-callee") in
  let real =
    Dialing.invite_certified ~rng ~identity:id ~cert
      ~callee_pk:callee.Types.public ~m:2 ()
  in
  let idle = Dialing.noop ~rng ~kind:Dialing.Certified () in
  let noise = Dialing.noise ~rng ~kind:Dialing.Certified ~index:0 () in
  Alcotest.(check int) "real = payload_len"
    (Dialing.payload_len Dialing.Certified)
    (Bytes.length real);
  Alcotest.(check int) "noop same" (Bytes.length real) (Bytes.length idle);
  Alcotest.(check int) "noise same" (Bytes.length real) (Bytes.length noise)

let test_plain_invitation_rejected_in_certified_deployment () =
  (* (a) A certificate-less client cannot dial in a certified
     deployment — caught client-side.  (b) A malicious client injecting
     an 80-byte invitation anyway: the last server discards it (wrong
     size), the callee never rings, and reply alignment is preserved. *)
  let net = make_net () in
  let alice = Network.connect ~seed:"alice-plain" net in
  let bob = Network.connect ~seed:"bob2" net in
  Client.dial alice ~callee_pk:(Client.public_key bob);
  Alcotest.(check bool) "client-side guard" true
    (try
       ignore (Network.run ~kind:Round.Dialing net);
       false
     with Invalid_argument _ -> true);
  (* Inject the plain invitation directly through the chain. *)
  let rng = Drbg.of_string "inject" in
  let chain = Network.chain net in
  let payload =
    Dialing.invite ~rng
      ~identity:(Client.identity alice)
      ~callee_pk:(Client.public_key bob) ~m:1 ()
  in
  let onion =
    (Vuvuzela_mixnet.Onion.wrap ~rng ~server_pks:(Chain.public_keys chain)
       ~round:77 payload)
      .Vuvuzela_mixnet.Onion.onion
  in
  let acks = Chain.dialing_round_exn chain ~round:77 ~m:1 [| onion |] in
  Alcotest.(check int) "still acked (alignment kept)" 1 (Array.length acks);
  (* The undersized onion is dropped at the FIRST server (size
     uniformity at ingress), before it can be traced through the mix. *)
  Alcotest.(check bool) "first server flagged it" true
    ((Server.metrics (Chain.server chain 0)).Server.invalid_requests > 0);
  let drop = Chain.fetch_invitations chain ~index:0 in
  (* Every stored invitation has the certified size: the 80-byte one was
     dropped. *)
  List.iter
    (fun inv ->
      Alcotest.(check int) "only certified-size blobs stored"
        Certificate.certified_invitation_len (Bytes.length inv))
    drop;
  Alcotest.(check int) "bob finds nothing" 0
    (List.length (Dialing.scan ~identity:(Client.identity bob) drop))

let test_expired_certificate_flagged () =
  let net = make_net () in
  let sk, spk = signing_identity "expire-signer" in
  let alice =
    Network.connect ~seed:"alice3"
      ~certified:{ Client.signing_sk = sk; name = "alice"; validity = 0 }
      net
  in
  let bob = Network.connect ~seed:"bob3" net in
  Client.dial alice ~callee_pk:(Client.public_key bob);
  let events = (Network.run ~kind:Round.Dialing net).Network.events in
  match events with
  | [ (_, [ Client.Incoming_call { certificate = Some cert; _ } ]) ] -> (
      (* validity 0 expires after the dialing round it was issued in;
         verifying two rounds later must fail. *)
      match
        Certificate.verify ~now:3 ~trusted:(fun k -> Bytes.equal k spk) cert
      with
      | Error (Certificate.Expired _) -> ()
      | Ok () -> Alcotest.fail "expired certificate verified"
      | Error e -> Alcotest.failf "unexpected error: %a" Certificate.pp_error e)
  | _ -> Alcotest.fail "call not delivered"

let test_certified_noise_not_decryptable () =
  (* With nobody dialing, certified drops contain only noise; trial
     decryption finds nothing. *)
  let net = make_net () in
  let bob =
    Network.connect ~seed:"bob4"
      ~certified:
        { Client.signing_sk = fst (signing_identity "b4"); name = "bob";
          validity = 5 }
      net
  in
  ignore bob;
  let events = (Network.run ~kind:Round.Dialing net).Network.events in
  Alcotest.(check int) "silence" 0 (List.length events);
  (* The drop is nonetheless non-empty (noise from 3 servers). *)
  let size =
    List.length (Chain.fetch_invitations (Network.chain net) ~index:0)
  in
  Alcotest.(check bool) "noise present" true (size >= 6)

let suite =
  let tc = Alcotest.test_case in
  ( "certified",
    [
      tc "certified call end to end" `Quick test_certified_call_end_to_end;
      tc "certified sizes uniform" `Quick test_certified_sizes_uniform;
      tc "plain invitation rejected" `Quick test_plain_invitation_rejected_in_certified_deployment;
      tc "expired certificate flagged" `Quick test_expired_certificate_flagged;
      tc "certified noise not decryptable" `Quick test_certified_noise_not_decryptable;
    ] )
