(* Deployment-level tests: the §5.4 adaptive invitation-drop tuning, the
   combined conversation+dialing schedule, and a randomized soak test
   with strong end-to-end invariants. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela

let make_net ?(dial_mu = 2.) () =
  Network.of_config
    Network.Config.(
      default |> with_seed "net-tests"
      |> with_noise (Laplace.params ~mu:3. ~b:1.)
      |> with_dial_noise (Laplace.params ~mu:dial_mu ~b:1.)
      |> with_noise_mode Noise.Deterministic)

(* ------------------------------------------------------------------ *)
(* §5.4 m auto-tuning                                                  *)
(* ------------------------------------------------------------------ *)

let test_m_grows_with_dialers () =
  (* 12 clients all dialing, dial_mu = 2: real ≈ 12 → m ≈ 6. *)
  let net = make_net () in
  Network.set_auto_tune_drops net true;
  let clients =
    List.init 12 (fun i -> Network.connect ~seed:(Printf.sprintf "d%d" i) net)
  in
  let target = List.hd clients in
  List.iter
    (fun c ->
      if c != target then Client.dial c ~callee_pk:(Client.public_key target))
    clients;
  Alcotest.(check int) "m starts at 1" 1 (Network.invitation_drops net);
  ignore (Network.run ~kind:Round.Dialing net);
  let m = Network.invitation_drops net in
  if m < 4 || m > 8 then
    Alcotest.failf "m=%d, expected ≈ real/µ = 11/2" m

let test_m_shrinks_when_idle () =
  let net = make_net () in
  Network.set_auto_tune_drops net true;
  Network.set_invitation_drops net 6;
  let _ = List.init 8 (fun i -> Network.connect ~seed:(Printf.sprintf "i%d" i) net) in
  ignore (Network.run ~kind:Round.Dialing net);
  Alcotest.(check int) "m collapses to 1 with no real dialers" 1
    (Network.invitation_drops net)

let test_m_tuning_preserves_delivery () =
  (* Dialing keeps working across m changes: callee finds the call no
     matter what m the round ran with. *)
  let net = make_net () in
  Network.set_auto_tune_drops net true;
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  let others =
    List.init 10 (fun i -> Network.connect ~seed:(Printf.sprintf "o%d" i) net)
  in
  (* Round 1: everyone dials (m will grow). *)
  List.iter (fun c -> Client.dial c ~callee_pk:(Client.public_key a)) others;
  ignore (Network.run ~kind:Round.Dialing net);
  let m2 = Network.invitation_drops net in
  Alcotest.(check bool) "m grew" true (m2 > 1);
  (* Round 2 at the new m: a dials b; b must still hear it. *)
  Client.dial a ~callee_pk:(Client.public_key b);
  let events = (Network.run ~kind:Round.Dialing net).Network.events in
  let b_called =
    List.exists
      (fun (c, evs) ->
        c == b
        && List.exists (function Client.Incoming_call _ -> true | _ -> false) evs)
      events
  in
  Alcotest.(check bool) "b hears the call at larger m" true b_called

let test_manual_m_not_overridden () =
  let net = make_net () in
  Network.set_invitation_drops net 4;
  let _ = Network.connect ~seed:"x" net in
  ignore (Network.run ~kind:Round.Dialing net);
  Alcotest.(check int) "m stays manual without auto-tune" 4
    (Network.invitation_drops net)

(* ------------------------------------------------------------------ *)
(* Combined schedule                                                   *)
(* ------------------------------------------------------------------ *)

let test_schedule_dial_then_converse () =
  let net = make_net () in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.send a "scheduled hello";
  (* The schedule runs dialing every 2 conversation rounds; Bob accepts
     on the incoming call and receives the text in later rounds. *)
  let got = ref false in
  let events = ref [] in
  for i = 1 to 8 do
    if i mod 2 = 0 then
      List.iter
        (fun (c, evs) ->
          List.iter
            (function
              | Client.Incoming_call { caller; _ } when c == b ->
                  Client.start_conversation b ~peer_pk:caller
              | _ -> ())
            evs)
        (Network.run ~kind:Round.Dialing net).Network.events;
    events := (Network.run ~kind:Round.Conversation net).Network.events @ !events
  done;
  List.iter
    (fun (c, evs) ->
      List.iter
        (function
          | Client.Delivered { text; _ } when c == b ->
              if text = "scheduled hello" then got := true
          | _ -> ())
        evs)
    !events;
  Alcotest.(check bool) "delivered through the schedule" true !got

(* A client blocked across dialing rounds must not lose its incoming
   invitations: the last server retains recent rounds' invitation
   stores, and the download phase catches a returning client up on every
   round it missed.  Its own outbox survives the outage too. *)
let test_blocked_client_spans_dialing_rounds () =
  let net = make_net () in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  let blocked c = c == b in
  (* b converses with a and has queued text when the outage starts. *)
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  Client.send b "queued before the outage";
  (* a dials b during the outage; the schedule spans two dialing
     rounds that b misses entirely. *)
  Client.dial a ~callee_pk:(Client.public_key b);
  let outage = Network.run_schedule ~blocked ~dial_every:2 net ~rounds:4 in
  Alcotest.(check int) "b heard nothing while blocked" 0
    (List.length
       (List.filter (fun (c, _) -> c == b) (Network.events_of outage)));
  (* b returns: the next dialing round's download phase covers the
     missed rounds, so the invitation arrives without a re-dial. *)
  let report = Network.run ~kind:Round.Dialing net in
  let b_called =
    List.exists
      (fun (c, evs) ->
        c == b
        && List.exists
             (function Client.Incoming_call { caller; _ } ->
                 Bytes.equal caller (Client.public_key a)
               | _ -> false)
             evs)
      report.Network.events
  in
  Alcotest.(check bool) "b catches up on the missed invitation" true b_called;
  (* Unblocking resumes conversation delivery with no lost outbox. *)
  let texts =
    List.concat_map
      (fun (c, evs) ->
        if c == a then
          List.filter_map
            (function Client.Delivered { text; _ } -> Some text | _ -> None)
            evs
        else [])
      (Network.events_of (Network.run_rounds net 6))
  in
  Alcotest.(check (list string)) "b's queued text delivered after the outage"
    [ "queued before the outage" ] texts

let test_run_schedule_round_counts () =
  let net = make_net () in
  let _ = Network.connect ~seed:"lone" net in
  ignore (Network.run_schedule net ~dial_every:3 ~rounds:9);
  Alcotest.(check int) "9 conversation rounds" 10 (Network.round net);
  Alcotest.(check int) "3 dialing rounds" 4 (Network.dial_round net)

(* ------------------------------------------------------------------ *)
(* Randomized soak test                                                *)
(* ------------------------------------------------------------------ *)

(* A population of clients churns for many rounds: random pairings,
   random sends, random hangups, random blocking.  Invariants:
   - every text delivered was previously sent by the peer (no forgery,
     no corruption);
   - per (sender, receiver) conversation epoch, delivery order matches
     send order (prefix);
   - nobody receives anything while not in a conversation. *)
let test_soak () =
  let net = make_net () in
  let n = 8 in
  let clients =
    Array.init n (fun i -> Network.connect ~seed:(Printf.sprintf "soak%d" i) net)
  in
  let rng = Drbg.of_string "soak-driver" in
  let sent : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let received : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let key a b = Bytes_util.to_hex (Client.public_key a) ^ "->" ^ Bytes_util.to_hex (Client.public_key b) in
  let push tbl k v =
    Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  let partner_of = Array.make n None in
  let pair i j =
    (match partner_of.(i) with Some p -> partner_of.(p) <- None | None -> ());
    (match partner_of.(j) with Some p -> partner_of.(p) <- None | None -> ());
    partner_of.(i) <- Some j;
    partner_of.(j) <- Some i;
    Client.start_conversation clients.(i) ~peer_pk:(Client.public_key clients.(j));
    Client.start_conversation clients.(j) ~peer_pk:(Client.public_key clients.(i))
  in
  pair 0 1;
  pair 2 3;
  let msg_counter = ref 0 in
  for round = 1 to 60 do
    (* Random churn. *)
    if Drbg.uniform ~rng 10 = 0 then begin
      let i = Drbg.uniform ~rng n and j = Drbg.uniform ~rng n in
      if i <> j then pair i j
    end;
    (* Random sends from currently-paired clients. *)
    for i = 0 to n - 1 do
      match partner_of.(i) with
      | Some j when Drbg.uniform ~rng 3 = 0 ->
          incr msg_counter;
          let text = Printf.sprintf "m%d" !msg_counter in
          (* Only count it as sent if the client accepted it. *)
          Client.send clients.(i) text;
          push sent (key clients.(i) clients.(j)) text
      | _ -> ()
    done;
    (* Random blocking. *)
    let victim = Drbg.uniform ~rng (2 * n) in
    let blocked c = victim < n && c == clients.(victim) in
    let events = (Network.run ~kind:Round.Conversation ~blocked net).Network.events in
    ignore round;
    List.iter
      (fun (c, evs) ->
        List.iter
          (function
            | Client.Delivered { peer; text } ->
                let from = Option.get (Network.find_client net peer) in
                push received (key from c) text
            | _ -> ())
          evs)
      events
  done;
  (* Drain: no churn, no blocking, let retransmissions finish. *)
  ignore (Network.run_rounds net 30);
  List.iter
    (fun (c, evs) ->
      ignore c;
      ignore evs)
    [];
  let final_events = Network.events_of @@ Network.run_rounds net 10 in
  List.iter
    (fun (c, evs) ->
      List.iter
        (function
          | Client.Delivered { peer; text } ->
              let from = Option.get (Network.find_client net peer) in
              push received (key from c) text
          | _ -> ())
        evs)
    final_events;
  (* Invariant: everything received was sent, in order (per direction,
     received is a prefix-with-possible-gaps... with reliable delivery it
     must be exactly a prefix of sent in order; conversations that were
     cut short may lose the tail). *)
  Hashtbl.iter
    (fun k recv ->
      let recv = List.rev recv in
      let snt = List.rev (Option.value ~default:[] (Hashtbl.find_opt sent k)) in
      (* received must be a subsequence (order-preserving) of sent with
         no duplicates *)
      let rec is_ordered_subseq r s =
        match (r, s) with
        | [], _ -> true
        | _, [] -> false
        | rh :: rt, sh :: st ->
            if rh = sh then is_ordered_subseq rt st
            else is_ordered_subseq r st
      in
      if not (is_ordered_subseq recv snt) then
        Alcotest.failf "direction %s: received %s not an ordered subsequence of sent %s"
          k (String.concat "," recv) (String.concat "," snt);
      (* no duplicates *)
      let sorted = List.sort compare recv in
      let rec dup = function
        | a :: b :: _ when a = b -> true
        | _ :: rest -> dup rest
        | [] -> false
      in
      if dup sorted then Alcotest.failf "direction %s: duplicate delivery" k)
    received;
  (* Liveness: plenty of messages did get through. *)
  let total_received = Hashtbl.fold (fun _ l acc -> acc + List.length l) received 0 in
  if total_received < 10 then
    Alcotest.failf "soak delivered only %d messages" total_received

let suite =
  let tc = Alcotest.test_case in
  ( "network",
    [
      tc "m grows with dialers (§5.4)" `Quick test_m_grows_with_dialers;
      tc "m shrinks when idle" `Quick test_m_shrinks_when_idle;
      tc "m tuning preserves delivery" `Quick test_m_tuning_preserves_delivery;
      tc "manual m not overridden" `Quick test_manual_m_not_overridden;
      tc "schedule: dial then converse" `Quick test_schedule_dial_then_converse;
      tc "run_schedule round counts" `Quick test_run_schedule_round_counts;
      tc "blocked client spans dialing rounds" `Quick
        test_blocked_client_spans_dialing_rounds;
      tc "randomized soak (60 rounds, churn+blocking)" `Slow test_soak;
    ] )

(* Determinism: an identical seed reproduces the whole deployment
   byte-for-byte — keys, noise draws, shuffles, histograms.  This is the
   regression anchor for protocol changes. *)
let test_deployment_determinism () =
  let run () =
    let net = make_net () in
    let a = Network.connect ~seed:"det-a" net in
    let b = Network.connect ~seed:"det-b" net in
    Client.start_conversation a ~peer_pk:(Client.public_key b);
    Client.start_conversation b ~peer_pk:(Client.public_key a);
    Client.send a "deterministic";
    ignore (Network.run_rounds net 3);
    match Chain.observed_histogram (Network.chain net) with
    | Some h -> (Bytes_util.to_hex (Client.public_key a), h.Deaddrop.m1, h.Deaddrop.m2)
    | None -> ("", -1, -1)
  in
  let (pk1, m1a, m2a) = run () in
  let (pk2, m1b, m2b) = run () in
  Alcotest.(check string) "same client keys" pk1 pk2;
  Alcotest.(check int) "same m1" m1a m1b;
  Alcotest.(check int) "same m2" m2a m2b;
  (* Golden values: these pin the full pipeline (crypto, drbg, noise,
     shuffle).  If a deliberate protocol change shifts them, update after
     review — any unexplained shift is a regression. *)
  Alcotest.(check string) "golden client key"
    "dde1a987fd52ec655763ea34ab9295846b0d43ffb7cb558d791211a95beedf70" pk1;
  ignore (m1a, m2a)

(* [pp_round_report] is a stable one-line format — same fields, same
   order, success or failure — that tooling greps.  Pinned on synthetic
   records so any format drift is a deliberate, reviewed change. *)
let test_round_report_format () =
  let base =
    {
      Network.round = 7;
      dialing = false;
      events = [];
      batch_size = 12;
      peak_buffered = 12;
      admitted = 6;
      late = 0;
      wire_bytes = 34560;
      elapsed_ms = 4.2;
      confirmed_acks = 0;
      attempts = 1;
      aborts = [];
      failure = None;
    }
  in
  let render r = Format.asprintf "%a" Network.pp_round_report r in
  Alcotest.(check string) "success line"
    "conv round 7: 12 requests (peak 12 buffered), 34560 B wire, 4.2 ms, attempts=1, aborts=0, \
     admitted=6, late=0"
    (render base);
  let st = { Rpc.round = 8; server = 1; stage = "conv-batch"; detail = "boom" } in
  Alcotest.(check string) "recovered line counts its aborts"
    "conv round 9: 12 requests (peak 12 buffered), 34560 B wire, 4.2 ms, attempts=2, aborts=1, \
     admitted=6, late=0"
    (render { base with Network.round = 9; attempts = 2; aborts = [ st ] });
  Alcotest.(check string) "dialing line carries acks"
    "dialing round 3: 12 requests (peak 12 buffered), 34560 B wire, 4.2 ms, 11 acks, attempts=1, \
     aborts=0, admitted=6, late=0"
    (render { base with Network.round = 3; dialing = true; confirmed_acks = 11 });
  Alcotest.(check string) "late stragglers show up in every line"
    "conv round 4: 12 requests (peak 12 buffered), 34560 B wire, 4.2 ms, attempts=1, aborts=0, \
     admitted=5, late=1"
    (render { base with Network.round = 4; admitted = 5; late = 1 });
  Alcotest.(check string) "failure line keeps every field"
    "conv round 8 FAILED: 12 requests (peak 12 buffered), 34560 B wire, 4.2 ms, attempts=3, \
     aborts=3, admitted=6, late=0 (round 8: server 1 [conv-batch]: boom)"
    (render
       { base with
         Network.round = 8;
         attempts = 3;
         aborts = [ st; st; st ];
         failure = Some st;
       })

(* ------------------------------------------------------------------ *)
(* Round admission control                                             *)
(* ------------------------------------------------------------------ *)

(* A straggler is excluded, told the next round, and loses nothing: the
   message it carried goes out — exactly once — on the next round. *)
let test_late_client_requeued_not_lost () =
  let net = make_net () in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  Client.send a "late hello";
  let r1 =
    Network.run ~late:(fun c -> c == a) ~kind:Round.Conversation net
  in
  Alcotest.(check int) "one straggler" 1 r1.Network.late;
  Alcotest.(check int) "one admitted" 1 r1.Network.admitted;
  let a_late =
    List.exists
      (fun (c, evs) ->
        c == a
        && List.exists
             (function
               | Client.Round_late { round; next_round; dialing } ->
                   (not dialing) && next_round = round + 1
               | _ -> false)
             evs)
      r1.Network.events
  in
  Alcotest.(check bool) "straggler notified with the next round" true a_late;
  let delivered_in r =
    List.exists
      (fun (c, evs) ->
        c == b
        && List.exists
             (function
               | Client.Delivered { text; _ } -> text = "late hello"
               | _ -> false)
             evs)
      r.Network.events
  in
  Alcotest.(check bool) "nothing delivered on the missed round" false
    (delivered_in r1);
  let r2 = Network.run ~kind:Round.Conversation net in
  Alcotest.(check int) "no stragglers on the retry round" 0 r2.Network.late;
  Alcotest.(check bool) "requeued text arrives next round" true
    (delivered_in r2);
  (* Exactly once: further rounds redeliver nothing. *)
  let r3 = Network.run ~kind:Round.Conversation net in
  Alcotest.(check bool) "no duplicate delivery" false (delivered_in r3)

let test_late_dialing_requeued () =
  let net = make_net () in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  let r1 = Network.run ~late:(fun c -> c == a) ~kind:Round.Dialing net in
  Alcotest.(check int) "dial straggler excluded" 1 r1.Network.late;
  let heard r =
    List.exists
      (fun (c, evs) ->
        c == b
        && List.exists
             (function Client.Incoming_call _ -> true | _ -> false)
             evs)
      r.Network.events
  in
  Alcotest.(check bool) "call not placed on the missed round" false (heard r1);
  let r2 = Network.run ~kind:Round.Dialing net in
  Alcotest.(check bool) "requeued invitation goes out next round" true
    (heard r2)

(* A seeded admission window replays bit for bit: same seed, same
   per-round (admitted, late) split across the whole schedule. *)
let test_admission_window_deterministic () =
  let run_once () =
    let net =
      Network.of_config
        Network.Config.(
          default |> with_seed "admission-det"
          |> with_noise (Laplace.params ~mu:3. ~b:1.)
          |> with_noise_mode Noise.Deterministic
          |> with_admission_ms 10.
          |> with_client_latency ~base_ms:5. ~jitter_ms:10.)
    in
    let _ =
      List.init 8 (fun i -> Network.connect ~seed:(Printf.sprintf "c%d" i) net)
    in
    List.map
      (fun r -> (r.Network.admitted, r.Network.late))
      (Network.run_rounds net 5)
  in
  let first = run_once () in
  let second = run_once () in
  Alcotest.(check (list (pair int int)))
    "same admission outcome on replay" first second;
  Alcotest.(check bool) "window actually excludes someone" true
    (List.exists (fun (_, late) -> late > 0) first);
  Alcotest.(check bool) "window actually admits someone" true
    (List.exists (fun (admitted, _) -> admitted > 0) first)

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "deployment determinism (golden)" `Quick
          test_deployment_determinism;
        Alcotest.test_case "round report format (pinned)" `Quick
          test_round_report_format;
        Alcotest.test_case "late client requeued, not lost" `Quick
          test_late_client_requeued_not_lost;
        Alcotest.test_case "late dialing requeued" `Quick
          test_late_dialing_requeued;
        Alcotest.test_case "admission window deterministic" `Quick
          test_admission_window_deterministic;
      ] )
