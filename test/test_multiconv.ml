(* The §9 multiple-conversations extension: a client with
   max_conversations = c sends exactly c indistinguishable exchange
   requests every round and can hold c concurrent conversations. *)

open Vuvuzela_dp
open Vuvuzela

let tiny_noise = Laplace.params ~mu:3. ~b:1.

let make_net () =
  Network.of_config
    Network.Config.(
      default |> with_seed "multiconv" |> with_noise tiny_noise
      |> with_dial_noise (Laplace.params ~mu:1. ~b:1.)
      |> with_noise_mode Noise.Deterministic)

let texts_from peer events client =
  List.concat_map
    (fun (c, evs) ->
      if c == client then
        List.filter_map
          (function
            | Client.Delivered { peer = p; text } when Bytes.equal p peer ->
                Some text
            | _ -> None)
          evs
      else [])
    events

let test_fixed_request_count () =
  let net = make_net () in
  let hub = Network.connect ~seed:"hub" ~max_conversations:3 net in
  (* Idle, one, two, three conversations: always exactly 3 requests. *)
  let count () = List.length (Client.conversation_requests hub ~round:999) in
  Alcotest.(check int) "idle: 3 requests" 3 (count ());
  let b = Network.connect ~seed:"b" net in
  Client.start_conversation hub ~peer_pk:(Client.public_key b);
  Alcotest.(check int) "one conv: 3 requests" 3 (count ());
  let c = Network.connect ~seed:"c" net in
  Client.start_conversation hub ~peer_pk:(Client.public_key c);
  Alcotest.(check int) "two convs: 3 requests" 3 (count ());
  (* All requests are the same size. *)
  let rs = Client.conversation_requests hub ~round:1000 in
  let sizes = List.sort_uniq compare (List.map Bytes.length rs) in
  Alcotest.(check int) "uniform sizes" 1 (List.length sizes)

let test_concurrent_conversations () =
  let net = make_net () in
  let hub = Network.connect ~seed:"hub" ~max_conversations:2 net in
  let b = Network.connect ~seed:"b" net in
  let c = Network.connect ~seed:"c" net in
  Client.start_conversation hub ~peer_pk:(Client.public_key b);
  Client.start_conversation hub ~peer_pk:(Client.public_key c);
  Client.start_conversation b ~peer_pk:(Client.public_key hub);
  Client.start_conversation c ~peer_pk:(Client.public_key hub);
  Client.send_to hub ~peer:(Client.public_key b) "to b";
  Client.send_to hub ~peer:(Client.public_key c) "to c";
  Client.send b "from b";
  Client.send c "from c";
  let events = Network.events_of @@ Network.run_rounds net 4 in
  Alcotest.(check (list string)) "b heard hub" [ "to b" ]
    (texts_from (Client.public_key hub) events b);
  Alcotest.(check (list string)) "c heard hub" [ "to c" ]
    (texts_from (Client.public_key hub) events c);
  Alcotest.(check (list string)) "hub heard b" [ "from b" ]
    (texts_from (Client.public_key b) events hub);
  Alcotest.(check (list string)) "hub heard c" [ "from c" ]
    (texts_from (Client.public_key c) events hub);
  Alcotest.(check int) "hub has two peers" 2 (List.length (Client.peers hub))

let test_capacity_eviction () =
  let net = make_net () in
  let hub = Network.connect ~seed:"hub" ~max_conversations:2 net in
  let mk s = Client.public_key (Network.connect ~seed:s net) in
  let b = mk "b" and c = mk "c" and d = mk "d" in
  Client.start_conversation hub ~peer_pk:b;
  Client.start_conversation hub ~peer_pk:c;
  Client.start_conversation hub ~peer_pk:d;
  (* Oldest (b) evicted. *)
  let peers = Client.peers hub in
  Alcotest.(check int) "still two" 2 (List.length peers);
  Alcotest.(check bool) "b gone" false (List.exists (Bytes.equal b) peers);
  Alcotest.(check bool) "c kept" true (List.exists (Bytes.equal c) peers);
  Alcotest.(check bool) "d added" true (List.exists (Bytes.equal d) peers)

let test_restart_same_peer () =
  let net = make_net () in
  let hub = Network.connect ~seed:"hub" ~max_conversations:2 net in
  let b = Network.connect ~seed:"b" net in
  let c = Network.connect ~seed:"c" net in
  Client.start_conversation hub ~peer_pk:(Client.public_key b);
  Client.start_conversation hub ~peer_pk:(Client.public_key c);
  (* Restarting with b must not evict c. *)
  Client.start_conversation hub ~peer_pk:(Client.public_key b);
  Alcotest.(check int) "still two peers" 2 (List.length (Client.peers hub))

let test_send_requires_disambiguation () =
  let net = make_net () in
  let hub = Network.connect ~seed:"hub" ~max_conversations:2 net in
  let b = Network.connect ~seed:"b" net in
  let c = Network.connect ~seed:"c" net in
  Client.start_conversation hub ~peer_pk:(Client.public_key b);
  Client.start_conversation hub ~peer_pk:(Client.public_key c);
  Alcotest.check_raises "ambiguous send"
    (Invalid_argument
       "Client.send: multiple conversations active; use send_to") (fun () ->
      Client.send hub "which one?");
  Alcotest.check_raises "unknown peer"
    (Invalid_argument "Client.send: no conversation with that peer")
    (fun () -> Client.send_to hub ~peer:(Bytes.make 32 'q') "nope")

let test_end_one_conversation () =
  let net = make_net () in
  let hub = Network.connect ~seed:"hub" ~max_conversations:2 net in
  let b = Network.connect ~seed:"b" net in
  let c = Network.connect ~seed:"c" net in
  Client.start_conversation hub ~peer_pk:(Client.public_key b);
  Client.start_conversation hub ~peer_pk:(Client.public_key c);
  Client.end_conversation ~peer:(Client.public_key b) hub;
  Alcotest.(check (list string)) "only c left"
    [ Vuvuzela_crypto.Bytes_util.to_hex (Client.public_key c) ]
    (List.map Vuvuzela_crypto.Bytes_util.to_hex (Client.peers hub));
  Client.end_conversation hub;
  Alcotest.(check bool) "all ended" false (Client.in_conversation hub)

let test_single_request_api_guard () =
  let net = make_net () in
  let hub = Network.connect ~seed:"hub" ~max_conversations:2 net in
  Alcotest.check_raises "singular API rejected"
    (Invalid_argument
       "Client.conversation_request: client has max_conversations > 1; use \
        conversation_requests") (fun () ->
      ignore (Client.conversation_request hub ~round:1))

let test_mixed_population () =
  (* Multi-conversation hubs and single-conversation clients coexist in
     one deployment; message flow and histograms stay sane. *)
  let net = make_net () in
  let hub = Network.connect ~seed:"hub" ~max_conversations:3 net in
  let spokes =
    List.init 3 (fun i -> Network.connect ~seed:(Printf.sprintf "s%d" i) net)
  in
  List.iteri
    (fun i s ->
      Client.start_conversation hub ~peer_pk:(Client.public_key s);
      Client.start_conversation s ~peer_pk:(Client.public_key hub);
      Client.send_to hub ~peer:(Client.public_key s) (Printf.sprintf "hi %d" i))
    spokes;
  let events = Network.events_of @@ Network.run_rounds net 3 in
  List.iteri
    (fun i s ->
      Alcotest.(check (list string))
        (Printf.sprintf "spoke %d" i)
        [ Printf.sprintf "hi %d" i ]
        (texts_from (Client.public_key hub) events s))
    spokes;
  (* Total per-round requests: hub's 3 + 3 spokes = 6 real slots. *)
  match Chain.observed_histogram (Network.chain net) with
  | Some h ->
      (* 3 real pairs + deterministic noise (2 servers × ⌈µ/2⌉=2 pairs). *)
      Alcotest.(check int) "m2 counts hub pairs + noise" 7 h.Deaddrop.m2
  | None -> Alcotest.fail "no histogram"

let suite =
  let tc = Alcotest.test_case in
  ( "multiconv",
    [
      tc "fixed request count" `Quick test_fixed_request_count;
      tc "concurrent conversations" `Quick test_concurrent_conversations;
      tc "capacity eviction" `Quick test_capacity_eviction;
      tc "restart same peer" `Quick test_restart_same_peer;
      tc "send disambiguation" `Quick test_send_requires_disambiguation;
      tc "end one conversation" `Quick test_end_one_conversation;
      tc "singular API guard" `Quick test_single_request_api_guard;
      tc "mixed population" `Quick test_mixed_population;
    ] )
