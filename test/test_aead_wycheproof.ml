(* Wycheproof-style negative tests for ChaCha20-Poly1305.

   Wycheproof's chacha20_poly1305_test.json is dominated by mutation
   cases: tags truncated or flipped at every byte, modified aad, and
   malformed parameter lengths.  We regenerate that shape locally —
   every case must reject ([None] / [false]) or raise, and a rejecting
   [open_into] must leave the destination untouched.  This is the
   misuse-resistance half of the oracle gate; byte-exactness lives in
   test_crypto.ml and test/prop. *)

open Vuvuzela_crypto

let key = Bytes.init 32 (fun i -> Char.chr (0xa0 lxor i))
let nonce = Aead.nonce_of ~domain:0x77 ~counter:9
let aad = Bytes.of_string "wycheproof-aad"
let pt = Bytes.of_string "attack at dawn, bring snacks"
let sealed = Aead.seal ~key ~nonce ~aad pt

let flip b i mask =
  let c = Bytes.copy b in
  Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor mask));
  c

(* Every byte of the tag, flipped by every single-bit mask at the
   boundary positions plus 0x01/0x80 in between: all must reject. *)
let test_tag_flips () =
  let n = Bytes.length sealed in
  for i = n - Aead.tag_len to n - 1 do
    List.iter
      (fun mask ->
        match Aead.open_ ~key ~nonce ~aad (flip sealed i mask) with
        | None -> ()
        | Some _ ->
            Alcotest.fail
              (Printf.sprintf "flipped tag byte %d (mask %#x) accepted" i mask))
      [ 0x01; 0x80; 0xff ]
  done

(* Truncating the sealed text anywhere — from stripping one byte to
   leaving less than a whole tag — must reject, never mis-decrypt. *)
let test_truncation () =
  for len = 0 to Bytes.length sealed - 1 do
    match Aead.open_ ~key ~nonce ~aad (Bytes.sub sealed 0 len) with
    | None -> ()
    | Some _ -> Alcotest.fail (Printf.sprintf "truncation to %d accepted" len)
  done

let test_aad_mutations () =
  let reject name aad' =
    match Aead.open_ ~key ~nonce ~aad:aad' sealed with
    | None -> ()
    | Some _ -> Alcotest.fail (name ^ " accepted")
  in
  for i = 0 to Bytes.length aad - 1 do
    reject (Printf.sprintf "aad flip %d" i) (flip aad i 0x01)
  done;
  reject "aad truncated" (Bytes.sub aad 0 (Bytes.length aad - 1));
  reject "aad extended" (Bytes.cat aad (Bytes.of_string "x"));
  reject "aad empty" Bytes.empty;
  (* and sealing with empty aad must not open under the real aad *)
  let sealed_no_aad = Aead.seal ~key ~nonce pt in
  match Aead.open_ ~key ~nonce ~aad sealed_no_aad with
  | None -> ()
  | Some _ -> Alcotest.fail "aad added after sealing accepted"

let test_wrong_key_nonce () =
  (match Aead.open_ ~key:(flip key 0 0x01) ~nonce ~aad sealed with
  | None -> ()
  | Some _ -> Alcotest.fail "wrong key accepted");
  match Aead.open_ ~key ~nonce:(flip nonce 11 0x01) ~aad sealed with
  | None -> ()
  | Some _ -> Alcotest.fail "wrong nonce accepted"

(* Malformed key/nonce lengths must raise, in both directions and in
   both the allocating and _into APIs. *)
let test_bad_lengths () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "bad length accepted"
  in
  List.iter
    (fun n ->
      let short_key = Bytes.make n 'k' in
      raises (fun () -> Aead.seal ~key:short_key ~nonce pt);
      raises (fun () -> Aead.open_ ~key:short_key ~nonce sealed))
    [ 0; 16; 31; 33; 64 ];
  List.iter
    (fun n ->
      let bad_nonce = Bytes.make n 'n' in
      raises (fun () -> Aead.seal ~key ~nonce:bad_nonce pt);
      raises (fun () -> Aead.open_ ~key ~nonce:bad_nonce sealed))
    [ 0; 8; 11; 13; 24 ]

(* Ciphertext shorter than the tag is a rejection, not an exception:
   the wire can legitimately deliver garbage. *)
let test_short_ciphertext () =
  for len = 0 to Aead.tag_len - 1 do
    (match Aead.open_ ~key ~nonce ~aad (Bytes.make len '\x5a') with
    | None -> ()
    | Some _ -> Alcotest.fail "short ciphertext accepted");
    let dst = Bytes.make 8 '\xee' in
    let src = Bytes.make len '\x5a' in
    if Aead.open_into ~key ~nonce ~aad ~src ~src_off:0 ~len ~dst ~dst_off:0 ()
    then Alcotest.fail "open_into accepted short ciphertext"
  done

(* _into range misuse: undersized and out-of-bounds buffers raise;
   distinct overlapping ranges in one buffer raise. *)
let test_into_ranges () =
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  let len = Bytes.length pt in
  raises "seal dst undersized" (fun () ->
      let dst = Bytes.create (len + Aead.tag_len - 1) in
      Aead.seal_into ~key ~nonce ~aad ~src:pt ~src_off:0 ~len ~dst ~dst_off:0
        ());
  raises "seal src range past end" (fun () ->
      let dst = Bytes.create (len + Aead.tag_len) in
      Aead.seal_into ~key ~nonce ~aad ~src:pt ~src_off:1 ~len ~dst ~dst_off:0
        ());
  raises "seal negative offset" (fun () ->
      let dst = Bytes.create (len + Aead.tag_len) in
      Aead.seal_into ~key ~nonce ~aad ~src:pt ~src_off:(-1) ~len ~dst
        ~dst_off:0 ());
  raises "seal overlapping ranges" (fun () ->
      let buf = Bytes.create (len + Aead.tag_len + 4) in
      Bytes.blit pt 0 buf 0 len;
      Aead.seal_into ~key ~nonce ~aad ~src:buf ~src_off:0 ~len ~dst:buf
        ~dst_off:4 ());
  raises "open dst undersized" (fun () ->
      let n = Bytes.length sealed in
      let dst = Bytes.create (n - Aead.tag_len - 1) in
      Aead.open_into ~key ~nonce ~aad ~src:sealed ~src_off:0 ~len:n ~dst
        ~dst_off:0 ()
      |> ignore);
  raises "open src range past end" (fun () ->
      let n = Bytes.length sealed in
      let dst = Bytes.create n in
      Aead.open_into ~key ~nonce ~aad ~src:sealed ~src_off:4 ~len:n ~dst
        ~dst_off:0 ()
      |> ignore);
  raises "open overlapping ranges" (fun () ->
      let n = Bytes.length sealed in
      let buf = Bytes.create (n + 4) in
      Bytes.blit sealed 0 buf 4 n;
      Aead.open_into ~key ~nonce ~aad ~src:buf ~src_off:4 ~len:n ~dst:buf
        ~dst_off:0 ()
      |> ignore)

(* A failed open_into must leave dst exactly as it was (verify before
   decrypt), and a successful in-place open must work. *)
let test_into_semantics () =
  let n = Bytes.length sealed in
  let dst = Bytes.make (n - Aead.tag_len) '\xcc' in
  let tampered = flip sealed (n - 1) 0x01 in
  let ok =
    Aead.open_into ~key ~nonce ~aad ~src:tampered ~src_off:0 ~len:n ~dst
      ~dst_off:0 ()
  in
  Alcotest.(check bool) "tampered open_into rejects" false ok;
  Alcotest.(check bytes)
    "dst untouched on reject"
    (Bytes.make (n - Aead.tag_len) '\xcc')
    dst;
  (* In-place: same buffer, same offset. *)
  let buf = Bytes.copy sealed in
  let ok =
    Aead.open_into ~key ~nonce ~aad ~src:buf ~src_off:0 ~len:n ~dst:buf
      ~dst_off:0 ()
  in
  Alcotest.(check bool) "in-place open accepts" true ok;
  Alcotest.(check bytes) "in-place plaintext" pt
    (Bytes.sub buf 0 (n - Aead.tag_len));
  (* In-place seal too: plaintext at offset 0 becomes ct||tag. *)
  let buf = Bytes.create n in
  Bytes.blit pt 0 buf 0 (Bytes.length pt);
  Aead.seal_into ~key ~nonce ~aad ~src:buf ~src_off:0 ~len:(Bytes.length pt)
    ~dst:buf ~dst_off:0 ();
  Alcotest.(check bytes) "in-place seal matches seal" sealed buf

let suite =
  let tc = Alcotest.test_case in
  ( "aead-wycheproof",
    [
      tc "tag flips (every byte)" `Quick test_tag_flips;
      tc "truncations (every length)" `Quick test_truncation;
      tc "aad mutations" `Quick test_aad_mutations;
      tc "wrong key/nonce" `Quick test_wrong_key_nonce;
      tc "bad key/nonce lengths" `Quick test_bad_lengths;
      tc "ciphertext shorter than tag" `Quick test_short_ciphertext;
      tc "_into range misuse" `Quick test_into_ranges;
      tc "_into semantics (reject/in-place)" `Quick test_into_semantics;
    ] )
