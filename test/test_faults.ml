(* Fault injection and the round supervisor: the fault-plan grammar, the
   one-shot injector, typed shutdown/deadline statuses, bounded retries
   with fresh onions and redrawn noise, client recovery (conversation
   requeue and dialing re-invitation), and adversarial frames surfacing
   as reports instead of exceptions. *)

open Vuvuzela_dp
open Vuvuzela
module Fault = Vuvuzela_faults.Fault

let make_net ?fault_plan ?tap ?round_deadline_ms ?(max_retries = 2)
    ?(noise_mode = Noise.Deterministic) ?(seed = "fault-tests") () =
  let opt f v cfg = match v with None -> cfg | Some v -> f v cfg in
  Network.of_config
    Network.Config.(
      default |> with_seed seed
      |> with_noise (Laplace.params ~mu:3. ~b:1.)
      |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
      |> with_noise_mode noise_mode
      |> with_max_retries max_retries
      |> opt with_fault_plan fault_plan
      |> opt with_tap tap
      |> opt with_round_deadline_ms round_deadline_ms)

let pair net =
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  (a, b)

let delivered_texts ~to_:c reports =
  List.concat_map
    (fun (c', evs) ->
      if c' == c then
        List.filter_map
          (function Client.Delivered { text; _ } -> Some text | _ -> None)
          evs
      else [])
    (Network.events_of reports)

(* ------------------------------------------------------------------ *)
(* Grammar                                                             *)
(* ------------------------------------------------------------------ *)

let test_plan_roundtrip () =
  let plan =
    [
      { Fault.round = 2; server = 1; kind = Fault.Crash };
      { Fault.round = 3; server = 0; kind = Fault.Corrupt_frame 5 };
      { Fault.round = 4; server = 2; kind = Fault.Truncate_frame 10 };
      { Fault.round = 4; server = 2; kind = Fault.Extend_frame 7 };
      { Fault.round = 5; server = 0; kind = Fault.Delay_ms 1000 };
      { Fault.round = 6; server = 1; kind = Fault.Tamper_slot 3 };
      { Fault.round = 7; server = 0; kind = Fault.Drop_link };
    ]
  in
  match Fault.parse (Fault.to_string plan) with
  | Ok plan' ->
      Alcotest.(check bool) "to_string/parse round-trips" true (plan = plan')
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_plan_syntax () =
  (match Fault.parse "crash@2:1x3" with
  | Ok faults ->
      Alcotest.(check int) "x3 expands to 3 faults" 3 (List.length faults);
      List.iteri
        (fun i f ->
          Alcotest.(check int) "consecutive rounds" (2 + i) f.Fault.round;
          Alcotest.(check int) "same server" 1 f.Fault.server)
        faults
  | Error e -> Alcotest.failf "x-count parse failed: %s" e);
  (match Fault.parse "  corrupt( 4 ) @ 3 ; drop@9 " with
  | Ok [ { kind = Fault.Corrupt_frame 4; round = 3; server = 0 };
         { kind = Fault.Drop_link; round = 9; server = 0 } ] -> ()
  | Ok _ -> Alcotest.fail "whitespace-tolerant parse got the wrong plan"
  | Error e -> Alcotest.failf "whitespace parse failed: %s" e);
  (match Fault.parse "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty plan must parse to []");
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed plan %S" bad)
    [ "crash"; "explode@2"; "crash@0"; "crash@2x0"; "corrupt(x)@2"; "corrupt(3@2" ]

let test_injector_one_shot () =
  let plan =
    match Fault.parse "crash@2:1;drop@2:1;delay(5)@3" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let inj = Fault.injector plan in
  Alcotest.(check int) "3 pending" 3 (Fault.pending inj);
  Alcotest.(check (list string)) "no faults at the wrong site" []
    (List.map (Format.asprintf "%a" Fault.pp_kind)
       (Fault.fire inj ~round:2 ~server:0));
  Alcotest.(check int) "both round-2 faults fire together" 2
    (List.length (Fault.fire inj ~round:2 ~server:1));
  Alcotest.(check int) "fired faults are consumed" 0
    (List.length (Fault.fire inj ~round:2 ~server:1));
  Alcotest.(check int) "delay fires once" 1
    (List.length (Fault.fire inj ~round:3 ~server:0));
  Alcotest.(check bool) "exhausted" true (Fault.exhausted inj)

(* ------------------------------------------------------------------ *)
(* Shutdown is a typed status (satellite: no silent sequential rounds)  *)
(* ------------------------------------------------------------------ *)

let test_round_after_shutdown_is_typed () =
  let net = make_net () in
  let _ = pair net in
  Network.shutdown net;
  Alcotest.(check bool) "chain reports shut down" true
    (Chain.is_shut_down (Network.chain net));
  (* Chain level. *)
  (match
     Chain.conversation_round (Network.chain net) ~round:99
       (Array.make 1 (Bytes.create 8))
   with
  | Error st ->
      Alcotest.(check bool) "typed chain-shutdown status" true
        (Rpc.is_chain_shutdown st);
      Alcotest.(check bool) "shutdown is not retryable" false (Rpc.retryable st)
  | Ok _ -> Alcotest.fail "round ran after shutdown");
  (* Supervisor level: reported as a failure, never retried. *)
  let report = Network.run ~kind:Round.Conversation net in
  (match report.Network.failure with
  | Some st ->
      Alcotest.(check bool) "supervisor surfaces chain-shutdown" true
        (Rpc.is_chain_shutdown st)
  | None -> Alcotest.fail "round succeeded after shutdown");
  Alcotest.(check int) "non-retryable: a single attempt" 1
    report.Network.attempts;
  match Network.run ~kind:Round.Dialing net with
  | { Network.failure = Some st; attempts = 1; _ } ->
      Alcotest.(check bool) "dialing too" true (Rpc.is_chain_shutdown st)
  | _ -> Alcotest.fail "dialing round not cleanly refused after shutdown"

(* ------------------------------------------------------------------ *)
(* events_of / failures_of (satellite)                                 *)
(* ------------------------------------------------------------------ *)

let test_events_of_skips_failures () =
  (* Rounds 2 and 3 both crash with max_retries = 1: the round fails for
     good.  events_of must not leak its Round_failed notifications as
     protocol events; failures_of must surface the status. *)
  let plan = Result.get_ok (Fault.parse "crash@2x2") in
  let net = make_net ~fault_plan:plan ~max_retries:1 () in
  let a, b = pair net in
  Client.send a "survives the outage";
  let reports = Network.run_rounds net 6 in
  let failed = List.filter (fun r -> r.Network.failure <> None) reports in
  Alcotest.(check int) "exactly one round ultimately failed" 1
    (List.length failed);
  let r = List.hd failed in
  Alcotest.(check int) "both attempts recorded" 2 r.Network.attempts;
  Alcotest.(check int) "both aborts recorded" 2 (List.length r.Network.aborts);
  Alcotest.(check bool) "failed report carries Round_failed events" true
    (List.for_all
       (fun (_, evs) ->
         List.exists
           (function Client.Round_failed _ -> true | _ -> false)
           evs)
       r.Network.events
    && r.Network.events <> []);
  Alcotest.(check bool) "events_of drops the failed report" true
    (List.for_all
       (fun (_, evs) ->
         List.for_all
           (function Client.Round_failed _ -> false | _ -> true)
           evs)
       (Network.events_of reports));
  Alcotest.(check int) "failures_of surfaces it" 1
    (List.length (Network.failures_of reports));
  Alcotest.(check (list string)) "the text still arrives afterwards"
    [ "survives the outage" ]
    (delivered_texts ~to_:b reports)

(* ------------------------------------------------------------------ *)
(* Adversarial frames become reports, not exceptions (satellite)       *)
(* ------------------------------------------------------------------ *)

let test_adversarial_frames_are_reports () =
  List.iter
    (fun (plan_s, what) ->
      let plan = Result.get_ok (Fault.parse plan_s) in
      let net = make_net ~fault_plan:plan ~max_retries:0 () in
      let _ = pair net in
      let report =
        try Network.run ~kind:Round.Conversation net
        with e ->
          Alcotest.failf "%s frame raised %s instead of reporting" what
            (Printexc.to_string e)
      in
      match report.Network.failure with
      | Some st ->
          Alcotest.(check string) "failure at the faulted link" "conv-batch"
            st.Rpc.stage
      | None -> Alcotest.failf "%s frame was not detected" what)
    [
      ("truncate(10)@1:1", "truncated");
      ("truncate(0)@1:2", "empty");
      ("pad(9)@1:1", "oversized");
      ("corrupt(5)@1:1", "garbage-tag");
      ("corrupt(0)@1:2", "bad-magic");
    ]

(* ------------------------------------------------------------------ *)
(* Supervisor: bounded retries, fresh onions, redrawn noise            *)
(* ------------------------------------------------------------------ *)

let test_retry_recovers_and_delivers () =
  let plan = Result.get_ok (Fault.parse "crash@2:1;drop@4") in
  let wire = Hashtbl.create 256 in
  let duplicates = ref 0 in
  let tap ~round:_ ~server:_ batch =
    Array.iter
      (fun onion ->
        let key = Bytes.to_string onion in
        if Hashtbl.mem wire key then incr duplicates
        else Hashtbl.add wire key ())
      batch
  in
  let net = make_net ~fault_plan:plan ~tap ~max_retries:2 () in
  let a, b = pair net in
  Client.send a "first";
  Client.send a "second";
  let reports = Network.run_rounds net 8 in
  let recovered =
    List.filter
      (fun r -> r.Network.failure = None && r.Network.attempts > 1)
      reports
  in
  Alcotest.(check int) "two rounds recovered by retrying" 2
    (List.length recovered);
  List.iter
    (fun r ->
      Alcotest.(check int) "one abort per recovered round" 1
        (List.length r.Network.aborts);
      Alcotest.(check int) "recovered on the second attempt" 2
        r.Network.attempts)
    recovered;
  Alcotest.(check int) "no round ultimately failed" 0
    (List.length (Network.failures_of reports));
  Alcotest.(check (list string)) "texts delivered in order despite faults"
    [ "first"; "second" ]
    (delivered_texts ~to_:b reports);
  (* The fresh-onion invariant: every onion observed on every link,
     across all attempts, was unique — a stored onion was never
     re-submitted. *)
  Alcotest.(check int) "no onion bytes crossed the wire twice" 0 !duplicates

let test_attempts_bounded () =
  (* Four consecutive crash rounds against max_retries = 2: attempts
     stop at 3, then the next round trips the remaining fault once and
     recovers. *)
  let plan = Result.get_ok (Fault.parse "crash@2x4") in
  let net = make_net ~fault_plan:plan ~max_retries:2 () in
  let _ = pair net in
  let report = Network.run ~kind:Round.Conversation net in
  Alcotest.(check bool) "round 1 clean" true (report.Network.failure = None);
  let report = Network.run ~kind:Round.Conversation net in
  Alcotest.(check bool) "rounds 2-4 exhausted retries" true
    (report.Network.failure <> None);
  Alcotest.(check int) "attempts = 1 + max_retries" 3 report.Network.attempts;
  let report = Network.run ~kind:Round.Conversation net in
  Alcotest.(check bool) "round 5 crashes once, retry recovers" true
    (report.Network.failure = None && report.Network.attempts = 2);
  Alcotest.(check int) "plan exhausted" 0
    (Chain.pending_faults (Network.chain net))

let test_deadline_miss_retries () =
  (* An injected hour-long stall trips the 10 s deadline; the stall is
     one-shot so the retry is fast and succeeds. *)
  let plan = Result.get_ok (Fault.parse "delay(3600000)@2:1") in
  let net = make_net ~fault_plan:plan ~round_deadline_ms:10_000. () in
  let a, b = pair net in
  Client.send a "past the stall";
  let reports = Network.run_rounds net 4 in
  let recovered =
    List.filter (fun r -> r.Network.attempts > 1) reports
  in
  (match recovered with
  | [ r ] -> (
      match r.Network.aborts with
      | [ st ] ->
          Alcotest.(check string) "aborted by the deadline" "deadline"
            st.Rpc.stage;
          Alcotest.(check bool) "deadline misses are retryable" true
            (Rpc.retryable st)
      | _ -> Alcotest.fail "expected exactly one abort")
  | _ -> Alcotest.fail "expected exactly one recovered round");
  Alcotest.(check (list string)) "delivery unaffected" [ "past the stall" ]
    (delivered_texts ~to_:b reports)

let test_noise_redrawn_per_attempt () =
  (* Sampled noise, crash at the last server's link in round 2: server
     0's outgoing batch (observed at server 1's link, upstream of the
     crash) exists for both the failed attempt (round 2) and the retry
     (round 3).  Aborting redraws noise, so the two batches differ in
     size under this seed — re-serving the first attempt's noise would
     keep them equal. *)
  let plan = Result.get_ok (Fault.parse "crash@2:2") in
  let sizes = Hashtbl.create 8 in
  let tap ~round ~server batch =
    if server = 1 then Hashtbl.replace sizes round (Array.length batch)
  in
  let net =
    make_net ~fault_plan:plan ~tap ~noise_mode:Noise.Sampled
      ~seed:"noise-redraw" ()
  in
  let _ = pair net in
  ignore (Network.run_rounds net 2);
  let attempt1 = Hashtbl.find_opt sizes 2 and retry = Hashtbl.find_opt sizes 3 in
  match (attempt1, retry) with
  | Some s1, Some s2 ->
      if s1 = s2 then
        Alcotest.failf
          "attempt and retry forwarded identical batch sizes (%d): noise was \
           not redrawn"
          s1
  | _ -> Alcotest.fail "tap missed an attempt"

(* ------------------------------------------------------------------ *)
(* Dialing-round recovery                                              *)
(* ------------------------------------------------------------------ *)

let test_dial_requeued_after_abort () =
  (* The dialing round carrying a's invitation crashes; the retry must
     carry a *fresh* invitation (the client requeues the callee, never
     the stored onion) and b must still hear the call. *)
  let plan = Result.get_ok (Fault.parse "crash@1:1") in
  let net = make_net ~fault_plan:plan ~max_retries:2 () in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  let report = Network.run ~kind:Round.Dialing net in
  Alcotest.(check bool) "dial round recovered" true
    (report.Network.failure = None);
  Alcotest.(check int) "on the second attempt" 2 report.Network.attempts;
  Alcotest.(check bool) "every ack confirmed on the retry" true
    (report.Network.confirmed_acks = 2);
  let b_called =
    List.exists
      (fun (c, evs) ->
        c == b
        && List.exists
             (function Client.Incoming_call _ -> true | _ -> false)
             evs)
      report.Network.events
  in
  Alcotest.(check bool) "b hears the retried invitation" true b_called

let test_dial_failure_does_not_lose_caller () =
  (* Even when a dialing round fails for good, the invitation is
     requeued and goes out in the next dialing round. *)
  let plan = Result.get_ok (Fault.parse "crash@1x2") in
  let net = make_net ~fault_plan:plan ~max_retries:1 () in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  let report = Network.run ~kind:Round.Dialing net in
  Alcotest.(check bool) "first dialing round failed" true
    (report.Network.failure <> None);
  let report = Network.run ~kind:Round.Dialing net in
  Alcotest.(check bool) "second dialing round clean" true
    (report.Network.failure = None);
  let b_called =
    List.exists
      (fun (c, evs) ->
        c == b
        && List.exists
             (function Client.Incoming_call _ -> true | _ -> false)
             evs)
      report.Network.events
  in
  Alcotest.(check bool) "invitation survived the failed round" true b_called

let suite =
  let tc = Alcotest.test_case in
  ( "faults",
    [
      tc "fault plan to_string/parse round-trip" `Quick test_plan_roundtrip;
      tc "fault plan grammar (counts, whitespace, errors)" `Quick
        test_plan_syntax;
      tc "injector fires each fault once" `Quick test_injector_one_shot;
      tc "rounds after shutdown return typed status" `Quick
        test_round_after_shutdown_is_typed;
      tc "events_of skips failed reports; failures_of" `Quick
        test_events_of_skips_failures;
      tc "adversarial frames surface as reports" `Quick
        test_adversarial_frames_are_reports;
      tc "retry recovers, delivers, never reuses onions" `Quick
        test_retry_recovers_and_delivers;
      tc "attempts bounded by max_retries" `Quick test_attempts_bounded;
      tc "deadline miss aborts and retries" `Quick test_deadline_miss_retries;
      tc "noise redrawn on each attempt" `Quick test_noise_redrawn_per_attempt;
      tc "aborted dialing round requeues the invitation" `Quick
        test_dial_requeued_after_abort;
      tc "failed dialing round does not lose the caller" `Quick
        test_dial_failure_does_not_lose_caller;
    ] )
