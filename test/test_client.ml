(* Client state machine and whole-network integration tests: reliable
   delivery, retransmission under blocking, pipelining, dialing flows. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela

let tiny_noise = Laplace.params ~mu:3. ~b:1.
let tiny_dial = Laplace.params ~mu:1. ~b:1.

let make_net ?(seed = "client-tests") ?(n_servers = 3) () =
  Network.of_config
    Network.Config.(
      default |> with_seed seed |> with_n_servers n_servers
      |> with_noise tiny_noise |> with_dial_noise tiny_dial
      |> with_noise_mode Noise.Deterministic)

let delivered_texts events =
  List.concat_map
    (fun (_, evs) ->
      List.filter_map
        (function Client.Delivered { text; _ } -> Some text | _ -> None)
        evs)
    events

let texts_for client events =
  List.concat_map
    (fun (c, evs) ->
      if c == client then
        List.filter_map
          (function Client.Delivered { text; _ } -> Some text | _ -> None)
          evs
      else [])
    events

let pair_up net =
  let a = Network.connect ~seed:"alice" net in
  let b = Network.connect ~seed:"bob" net in
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  (a, b)

let test_basic_delivery () =
  let net = make_net () in
  let a, b = pair_up net in
  Client.send a "hello";
  Client.send b "hi there";
  let events = Network.events_of @@ Network.run_rounds net 2 in
  Alcotest.(check (list string)) "bob got hello" [ "hello" ] (texts_for b events);
  Alcotest.(check (list string)) "alice got hi" [ "hi there" ] (texts_for a events)

let test_in_order_delivery () =
  let net = make_net () in
  let a, b = pair_up net in
  let msgs = List.init 10 (Printf.sprintf "msg-%02d") in
  List.iter (Client.send a) msgs;
  let events = Network.events_of @@ Network.run_rounds net 15 in
  Alcotest.(check (list string)) "all delivered in order" msgs (texts_for b events);
  Alcotest.(check int) "nothing left queued" 0 (Client.queued a)

let test_pipelining_window () =
  (* With window 4 and no losses, 8 messages need ~9 rounds (one data
     message per round), not 16+ as stop-and-wait would. *)
  let net = make_net () in
  let a = Network.connect ~seed:"alice" ~window:4 net in
  let b = Network.connect ~seed:"bob" ~window:4 net in
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  let msgs = List.init 8 (Printf.sprintf "p%d") in
  List.iter (Client.send a) msgs;
  let events = Network.events_of @@ Network.run_rounds net 9 in
  Alcotest.(check (list string)) "all 8 within 9 rounds" msgs (texts_for b events);
  Alcotest.(check int) "no retransmissions without loss" 0
    (Client.stats a).Client.retransmissions

let test_window_one_is_stop_and_wait () =
  let net = make_net () in
  let a = Network.connect ~seed:"alice" ~window:1 net in
  let b = Network.connect ~seed:"bob" ~window:1 net in
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  Client.send a "one";
  Client.send a "two";
  let events = Network.events_of @@ Network.run_rounds net 2 in
  (* With window 1, "two" cannot be sent until "one" is acked (ack
     arrives in round 2's reply), so only "one" lands in 2 rounds. *)
  Alcotest.(check (list string)) "only first delivered" [ "one" ] (texts_for b events);
  let events = Network.events_of @@ Network.run_rounds net 3 in
  Alcotest.(check (list string)) "second follows" [ "two" ] (texts_for b events)

let test_retransmission_on_block () =
  let net = make_net () in
  let a, b = pair_up net in
  Client.send a "survives blocking";
  (* Block Alice for the first two rounds: her message cannot have been
     exchanged. *)
  let blocked c = c == a in
  let events = Network.events_of @@ Network.run_rounds ~blocked net 2 in
  Alcotest.(check (list string)) "nothing delivered while blocked" []
    (delivered_texts events);
  (* Unblock: the client retransmits and delivery succeeds. *)
  let events = Network.events_of @@ Network.run_rounds net 6 in
  Alcotest.(check (list string)) "delivered after unblock"
    [ "survives blocking" ] (texts_for b events)

let test_retransmission_on_receiver_block () =
  let net = make_net () in
  let a, b = pair_up net in
  Client.send a "to a deaf bob";
  (* Bob offline: Alice's exchanges are lone accesses. *)
  let events = Network.events_of @@ Network.run_rounds ~blocked:(fun c -> c == b) net 3 in
  Alcotest.(check (list string)) "not delivered" [] (delivered_texts events);
  let events = Network.events_of @@ Network.run_rounds net 6 in
  Alcotest.(check (list string)) "delivered once bob returns"
    [ "to a deaf bob" ] (texts_for b events);
  Alcotest.(check bool) "retransmissions happened" true
    ((Client.stats a).Client.retransmissions > 0)

let test_no_duplicate_delivery () =
  (* Intermittent blocking forces retransmissions; the receiver must
     still deliver exactly once, in order. *)
  let net = make_net () in
  let a, b = pair_up net in
  let msgs = List.init 6 (Printf.sprintf "d%d") in
  List.iter (Client.send a) msgs;
  let all = ref [] in
  for round = 1 to 30 do
    let blocked c = (round mod 3 = 0 && c == a) || (round mod 4 = 0 && c == b) in
    let events = (Network.run ~kind:Round.Conversation ~blocked net).Network.events in
    all := !all @ texts_for b events
  done;
  Alcotest.(check (list string)) "exactly once, in order" msgs !all

let test_bidirectional_concurrent () =
  let net = make_net () in
  let a, b = pair_up net in
  let msgs_a = List.init 5 (Printf.sprintf "a->b %d") in
  let msgs_b = List.init 5 (Printf.sprintf "b->a %d") in
  List.iter (Client.send a) msgs_a;
  List.iter (Client.send b) msgs_b;
  let events = Network.events_of @@ Network.run_rounds net 10 in
  Alcotest.(check (list string)) "a→b" msgs_a (texts_for b events);
  Alcotest.(check (list string)) "b→a" msgs_b (texts_for a events)

let test_idle_clients_receive_nothing () =
  let net = make_net () in
  let a, b = pair_up net in
  let idle = Network.connect ~seed:"idle" net in
  Client.send a "private";
  let events = Network.events_of @@ Network.run_rounds net 4 in
  Alcotest.(check (list string)) "bob gets it" [ "private" ] (texts_for b events);
  Alcotest.(check (list string)) "idle client gets nothing" []
    (texts_for idle events);
  Alcotest.(check int) "idle client still sent every round" 4
    (Client.stats idle).Client.rounds

let test_send_without_conversation () =
  let net = make_net () in
  let a = Network.connect ~seed:"alice" net in
  Alcotest.check_raises "send requires conversation"
    (Invalid_argument "Client.send: no active conversation") (fun () ->
      Client.send a "nope")

let test_oversize_text_rejected () =
  let net = make_net () in
  let a, _ = pair_up net in
  Alcotest.(check bool) "oversize raises" true
    (try
       Client.send a (String.make (Types.text_capacity + 1) 'x');
       false
     with Invalid_argument _ -> true)

let test_end_conversation_stops_delivery () =
  let net = make_net () in
  let a, b = pair_up net in
  Client.send a "first";
  ignore (Network.run_rounds net 2);
  Client.end_conversation b;
  Client.send a "after hangup";
  let events = Network.events_of @@ Network.run_rounds net 4 in
  Alcotest.(check (list string)) "no delivery after hangup" []
    (texts_for b events);
  Alcotest.(check bool) "bob idle" false (Client.in_conversation b)

let test_conversation_switch () =
  (* Bob hangs up on Alice and talks to Charlie instead; Alice's messages
     stop landing, Charlie's flow. *)
  let net = make_net () in
  let a, b = pair_up net in
  let c = Network.connect ~seed:"charlie" net in
  Client.send a "to old bob";
  ignore (Network.run_rounds net 3);
  Client.start_conversation b ~peer_pk:(Client.public_key c);
  Client.start_conversation c ~peer_pk:(Client.public_key b);
  Client.send c "hello from charlie";
  let events = Network.events_of @@ Network.run_rounds net 4 in
  Alcotest.(check (list string)) "bob hears charlie" [ "hello from charlie" ]
    (texts_for b events);
  Alcotest.(check bool) "bob's peer is charlie" true
    (Client.peer b = Some (Client.public_key c))

(* ------------------------------------------------------------------ *)
(* Dialing through the network                                         *)
(* ------------------------------------------------------------------ *)

let test_dial_and_converse () =
  let net = make_net () in
  let a = Network.connect ~seed:"alice" net in
  let b = Network.connect ~seed:"bob" net in
  let _idle = Network.connect ~seed:"idle" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  let dial_events = (Network.run ~kind:Round.Dialing net).Network.events in
  (* Bob (and only Bob) hears the call. *)
  (match dial_events with
  | [ (c, [ Client.Incoming_call { caller; _ } ]) ] ->
      Alcotest.(check bool) "callee is bob" true (c == b);
      Alcotest.(check string) "caller is alice"
        (Bytes_util.to_hex (Client.public_key a))
        (Bytes_util.to_hex caller);
      Client.start_conversation b ~peer_pk:caller
  | _ -> Alcotest.fail "expected exactly one incoming call");
  Client.send a "we're connected";
  let events = Network.events_of @@ Network.run_rounds net 3 in
  Alcotest.(check (list string)) "conversation works" [ "we're connected" ]
    (texts_for b events)

let test_dial_consumed_once () =
  let net = make_net () in
  let a = Network.connect ~seed:"alice" net in
  let b = Network.connect ~seed:"bob" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  let ev1 = (Network.run ~kind:Round.Dialing net).Network.events in
  Alcotest.(check int) "first round rings" 1 (List.length ev1);
  let ev2 = (Network.run ~kind:Round.Dialing net).Network.events in
  Alcotest.(check int) "second round silent (dial consumed)" 0
    (List.length ev2)

let test_multiple_invitation_drops () =
  let net = make_net () in
  Network.set_invitation_drops net 8;
  let a = Network.connect ~seed:"alice" net in
  let b = Network.connect ~seed:"bob" net in
  let c = Network.connect ~seed:"charlie" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  Client.dial c ~callee_pk:(Client.public_key a);
  let events = (Network.run ~kind:Round.Dialing net).Network.events in
  let callers_of client =
    List.concat_map
      (fun (cl, evs) ->
        if cl == client then
          List.filter_map
            (function Client.Incoming_call { caller; _ } -> Some caller | _ -> None)
            evs
        else [])
      events
  in
  Alcotest.(check int) "bob rings" 1 (List.length (callers_of b));
  Alcotest.(check int) "alice rings" 1 (List.length (callers_of a));
  Alcotest.(check int) "charlie silent" 0 (List.length (callers_of c))

let test_blocked_dialer_silent () =
  let net = make_net () in
  let a = Network.connect ~seed:"alice" net in
  let b = Network.connect ~seed:"bob" net in
  Client.dial a ~callee_pk:(Client.public_key b);
  let events = (Network.run ~kind:Round.Dialing ~blocked:(fun c -> c == a) net).Network.events in
  Alcotest.(check int) "no call when dialer blocked" 0 (List.length events)

(* ------------------------------------------------------------------ *)
(* Many users                                                          *)
(* ------------------------------------------------------------------ *)

let test_many_pairs () =
  let net = make_net () in
  let pairs =
    List.init 8 (fun i ->
        let a = Network.connect ~seed:(Printf.sprintf "u%d-a" i) net in
        let b = Network.connect ~seed:(Printf.sprintf "u%d-b" i) net in
        Client.start_conversation a ~peer_pk:(Client.public_key b);
        Client.start_conversation b ~peer_pk:(Client.public_key a);
        Client.send a (Printf.sprintf "pair-%d ping" i);
        (a, b, i))
  in
  let events = Network.events_of @@ Network.run_rounds net 4 in
  List.iter
    (fun (_, b, i) ->
      Alcotest.(check (list string))
        (Printf.sprintf "pair %d delivered" i)
        [ Printf.sprintf "pair-%d ping" i ]
        (texts_for b events))
    pairs

let test_client_stats_accounting () =
  let net = make_net () in
  let a, b = pair_up net in
  Client.send a "x";
  ignore (Network.run_rounds net 5);
  let sa = Client.stats a and sb = Client.stats b in
  Alcotest.(check int) "alice rounds" 5 sa.Client.rounds;
  Alcotest.(check int) "alice sent 1 data" 1 sa.Client.data_sent;
  Alcotest.(check int) "bob received 1 data" 1 sb.Client.data_received;
  Alcotest.(check int) "no duplicates" 0 sb.Client.duplicates

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"any message batch is delivered exactly once in order"
      ~count:10
      (list_of_size (Gen.int_range 1 12)
         (string_gen_of_size (Gen.int_range 0 60) Gen.printable))
      (fun msgs ->
        let net = make_net ~seed:"prop-delivery" () in
        let a = Network.connect ~seed:"alice" net in
        let b = Network.connect ~seed:"bob" net in
        Client.start_conversation a ~peer_pk:(Client.public_key b);
        Client.start_conversation b ~peer_pk:(Client.public_key a);
        List.iter (Client.send a) msgs;
        let events = Network.events_of @@ Network.run_rounds net (List.length msgs + 8) in
        texts_for b events = msgs);
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "client",
    [
      tc "basic delivery" `Quick test_basic_delivery;
      tc "in-order delivery" `Quick test_in_order_delivery;
      tc "pipelining window" `Quick test_pipelining_window;
      tc "window=1 is stop-and-wait" `Quick test_window_one_is_stop_and_wait;
      tc "retransmission when sender blocked" `Quick test_retransmission_on_block;
      tc "retransmission when receiver blocked" `Quick test_retransmission_on_receiver_block;
      tc "no duplicate delivery under churn" `Quick test_no_duplicate_delivery;
      tc "bidirectional concurrent" `Quick test_bidirectional_concurrent;
      tc "idle clients receive nothing" `Quick test_idle_clients_receive_nothing;
      tc "send without conversation" `Quick test_send_without_conversation;
      tc "oversize text rejected" `Quick test_oversize_text_rejected;
      tc "end conversation stops delivery" `Quick test_end_conversation_stops_delivery;
      tc "conversation switch" `Quick test_conversation_switch;
      tc "dial then converse" `Quick test_dial_and_converse;
      tc "dial consumed once" `Quick test_dial_consumed_once;
      tc "multiple invitation drops" `Quick test_multiple_invitation_drops;
      tc "blocked dialer is silent" `Quick test_blocked_dialer_silent;
      tc "many pairs concurrently" `Quick test_many_pairs;
      tc "client stats accounting" `Quick test_client_stats_accounting;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )

(* Lost replies must not leak per-round contexts forever. *)
let test_pending_round_gc () =
  let net = make_net () in
  let a = Network.connect ~seed:"gc-a" net in
  (* Simulate many rounds whose replies are never delivered: produce
     requests directly without routing them anywhere. *)
  for round = 1 to 1_000 do
    ignore (Client.conversation_requests a ~round)
  done;
  (* The client survives; a real round afterwards still works. *)
  let b = Network.connect ~seed:"gc-b" net in
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  Client.send a "after the storm";
  (* Network's round counter is far behind the client's private ones;
     run enough rounds for a fresh exchange. *)
  let events = Network.events_of @@ Network.run_rounds net 3 in
  Alcotest.(check (list string)) "still functional" [ "after the storm" ]
    (texts_for b events)

let suite =
  ( fst suite,
    snd suite
    @ [ Alcotest.test_case "pending-round GC" `Quick test_pending_round_gc ] )
