(* Server and chain tests: round mechanics, noise accounting, batch
   alignment, invalid-request handling, dialing delivery. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela

let tiny_noise = Laplace.params ~mu:5. ~b:1.
let tiny_dial_noise = Laplace.params ~mu:2. ~b:1.

let make_chain ?(n = 3) ?(noise = tiny_noise) ?(mode = Noise.Deterministic) () =
  Chain.of_config
    Config.(
      default |> with_seed "test-chain" |> with_n_servers n
      |> with_noise noise |> with_dial_noise tiny_dial_noise
      |> with_noise_mode mode)

let alice = Types.identity_of_seed (Bytes.of_string "srv-alice")
let bob = Types.identity_of_seed (Bytes.of_string "srv-bob")

(* Build a raw exchange request for [identity] talking to [peer] (or a
   fake request when [peer] is None). *)
let request ?rng ~chain ~round ?peer identity msg =
  let session =
    match peer with
    | Some pk -> Conversation.derive ~identity ~peer_pk:pk
    | None -> Conversation.fake ?rng ~identity ()
  in
  let payload = Conversation.exchange_payload session ~round msg in
  let w =
    Vuvuzela_mixnet.Onion.wrap ?rng ~server_pks:(Chain.public_keys chain)
      ~round payload
  in
  (session, w)

let test_chain_exchange_two_users () =
  let chain = make_chain () in
  let round = 1 in
  let rng = Drbg.of_string "t1" in
  let ma = Message.Data { seq = 1; ack = 0; text = "from alice" } in
  let mb = Message.Data { seq = 1; ack = 0; text = "from bob" } in
  let sa, wa = request ~rng ~chain ~round ~peer:bob.Types.public alice ma in
  let sb, wb = request ~rng ~chain ~round ~peer:alice.Types.public bob mb in
  let results = Chain.conversation_round_exn chain ~round [| wa.onion; wb.onion |] in
  Alcotest.(check int) "slot-aligned results" 2 (Array.length results);
  let open_result s (w : Vuvuzela_mixnet.Onion.wrapped) r =
    match Vuvuzela_mixnet.Onion.unwrap_reply ~secrets:w.secrets ~round r with
    | None -> Alcotest.fail "reply unwrap failed"
    | Some result -> Conversation.read_result s ~round result
  in
  (match open_result sa wa results.(0) with
  | Some m -> Alcotest.(check bool) "alice got bob's" true (Message.equal m mb)
  | None -> Alcotest.fail "alice got nothing");
  match open_result sb wb results.(1) with
  | Some m -> Alcotest.(check bool) "bob got alice's" true (Message.equal m ma)
  | None -> Alcotest.fail "bob got nothing"

let test_chain_idle_user_gets_nothing () =
  let chain = make_chain () in
  let rng = Drbg.of_string "t2" in
  let round = 3 in
  let s, w = request ~rng ~chain ~round alice (Message.Empty { ack = 0 }) in
  let results = Chain.conversation_round_exn chain ~round [| w.onion |] in
  match Vuvuzela_mixnet.Onion.unwrap_reply ~secrets:w.secrets ~round results.(0) with
  | None -> Alcotest.fail "reply unwrap failed"
  | Some result ->
      Alcotest.(check bool) "idle result unreadable" true
        (Conversation.read_result s ~round result = None)

let test_histogram_includes_noise () =
  let chain = make_chain ~n:3 () in
  let rng = Drbg.of_string "t3" in
  let round = 1 in
  let _, wa = request ~rng ~chain ~round ~peer:bob.Types.public alice (Message.Empty { ack = 0 }) in
  let _, wb = request ~rng ~chain ~round ~peer:alice.Types.public bob (Message.Empty { ack = 0 }) in
  ignore (Chain.conversation_round_exn chain ~round [| wa.onion; wb.onion |]);
  match Chain.observed_histogram chain with
  | None -> Alcotest.fail "no histogram"
  | Some h ->
      (* Deterministic noise: 2 mixing servers × (5 singles + 3 pairs). *)
      Alcotest.(check int) "m1 = noise singles" 10 h.Deaddrop.m1;
      Alcotest.(check int) "m2 = real pair + noise pairs" 7 h.Deaddrop.m2;
      Alcotest.(check int) "no multi-access drops" 0 h.Deaddrop.m_more

let test_noise_metrics () =
  let chain = make_chain ~n:3 () in
  ignore (Chain.conversation_round_exn chain ~round:1 [||]);
  (* Mixing servers add noise; the last does not (conversation). *)
  let m0 = Server.metrics (Chain.server chain 0) in
  let m1 = Server.metrics (Chain.server chain 1) in
  let m2 = Server.metrics (Chain.server chain 2) in
  Alcotest.(check int) "server 0 singles" 5 m0.Server.noise_singles;
  Alcotest.(check int) "server 0 pairs" 3 m0.Server.noise_pairs;
  Alcotest.(check int) "server 1 singles" 5 m1.Server.noise_singles;
  Alcotest.(check int) "last server adds no conversation noise" 0
    m2.Server.noise_singles;
  (* Request counts grow down the chain: 0 → 11 → 22. *)
  Alcotest.(check int) "server 1 sees server 0 noise" 11 m1.Server.requests_in;
  Alcotest.(check int) "server 2 sees both" 22 m2.Server.requests_in

let test_invalid_onion_keeps_alignment () =
  let chain = make_chain () in
  let rng = Drbg.of_string "t4" in
  let round = 2 in
  let ma = Message.Data { seq = 1; ack = 0; text = "real" } in
  let mb = Message.Data { seq = 1; ack = 0; text = "also real" } in
  let sa, wa = request ~rng ~chain ~round ~peer:bob.Types.public alice ma in
  let _, wb = request ~rng ~chain ~round ~peer:alice.Types.public bob mb in
  let junk = Drbg.generate rng (Bytes.length wa.onion) in
  let results =
    Chain.conversation_round_exn chain ~round [| wa.onion; junk; wb.onion |]
  in
  Alcotest.(check int) "three results" 3 (Array.length results);
  (* The real pair still exchanges despite the junk slot between them. *)
  (match Vuvuzela_mixnet.Onion.unwrap_reply ~secrets:wa.secrets ~round results.(0) with
  | None -> Alcotest.fail "alice reply unwrap failed"
  | Some result -> (
      match Conversation.read_result sa ~round result with
      | Some m -> Alcotest.(check bool) "alice got bob" true (Message.equal m mb)
      | None -> Alcotest.fail "alice got nothing"));
  (* All replies are the same size (uniformity). *)
  Alcotest.(check int) "junk reply same size"
    (Bytes.length results.(0))
    (Bytes.length results.(1));
  Alcotest.(check int) "invalid metric" 1
    (Server.metrics (Chain.server chain 0)).Server.invalid_requests

let test_empty_round () =
  let chain = make_chain () in
  let results = Chain.conversation_round_exn chain ~round:1 [||] in
  Alcotest.(check int) "no client results" 0 (Array.length results)

let test_single_server_chain () =
  (* Degenerate chain of one server: no mixing, still functional. *)
  let chain = make_chain ~n:1 () in
  let rng = Drbg.of_string "t5" in
  let round = 1 in
  let ma = Message.Data { seq = 1; ack = 0; text = "a" } in
  let mb = Message.Data { seq = 1; ack = 0; text = "b" } in
  let sa, wa = request ~rng ~chain ~round ~peer:bob.Types.public alice ma in
  let _, wb = request ~rng ~chain ~round ~peer:alice.Types.public bob mb in
  let results = Chain.conversation_round_exn chain ~round [| wa.onion; wb.onion |] in
  match Vuvuzela_mixnet.Onion.unwrap_reply ~secrets:wa.secrets ~round results.(0) with
  | None -> Alcotest.fail "unwrap failed"
  | Some result -> (
      match Conversation.read_result sa ~round result with
      | Some m -> Alcotest.(check bool) "exchange works" true (Message.equal m mb)
      | None -> Alcotest.fail "no message")

let test_rounds_are_independent () =
  let chain = make_chain () in
  let rng = Drbg.of_string "t6" in
  (* A request wrapped for round 1 replayed in round 2 must die at the
     first server (nonce mismatch): its reply slot is garbage. *)
  let _, w = request ~rng ~chain ~round:1 ~peer:bob.Types.public alice (Message.Empty { ack = 0 }) in
  ignore (Chain.conversation_round_exn chain ~round:1 [| w.onion |]);
  let results = Chain.conversation_round_exn chain ~round:2 [| w.onion |] in
  Alcotest.(check bool) "replayed onion yields no readable reply" true
    (Vuvuzela_mixnet.Onion.unwrap_reply ~secrets:w.secrets ~round:2 results.(0) = None)

let test_backward_unknown_round () =
  let chain = make_chain () in
  Alcotest.check_raises "unknown round"
    (Invalid_argument "Server: backward pass for unknown round") (fun () ->
      ignore (Server.conv_backward (Chain.server chain 0) ~round:99 [||]))

(* ------------------------------------------------------------------ *)
(* Dialing rounds                                                      *)
(* ------------------------------------------------------------------ *)

let test_dialing_end_to_end () =
  let chain = make_chain () in
  let rng = Drbg.of_string "t7" in
  let m = 4 in
  let round = 1 in
  let wrap payload =
    (Vuvuzela_mixnet.Onion.wrap ~rng ~server_pks:(Chain.public_keys chain)
       ~round payload)
      .Vuvuzela_mixnet.Onion.onion
  in
  let invite = wrap (Dialing.invite ~rng ~identity:alice ~callee_pk:bob.Types.public ~m ()) in
  let idle = wrap (Dialing.noop ~rng ()) in
  let acks = Chain.dialing_round_exn chain ~round ~m [| invite; idle |] in
  Alcotest.(check int) "both acked" 2 (Array.length acks);
  (* Bob downloads his drop and finds Alice. *)
  let index = Deaddrop.Invitation.index_of ~m bob.Types.public in
  let drop = Chain.fetch_invitations chain ~index in
  (match Dialing.scan ~identity:bob drop with
  | [ caller ] ->
      Alcotest.(check string) "caller is alice"
        (Bytes_util.to_hex alice.Types.public)
        (Bytes_util.to_hex caller)
  | l -> Alcotest.failf "found %d callers" (List.length l));
  (* Every drop contains noise from all three servers (deterministic
     µ=2 each → at least 6 invitations even with no real traffic). *)
  for i = 0 to m - 1 do
    let size = List.length (Chain.fetch_invitations chain ~index:i) in
    if size < 6 then Alcotest.failf "drop %d has only %d invitations" i size
  done

let test_dialing_noop_not_delivered () =
  let chain = make_chain () in
  let rng = Drbg.of_string "t8" in
  let m = 2 in
  let wrap payload =
    (Vuvuzela_mixnet.Onion.wrap ~rng ~server_pks:(Chain.public_keys chain)
       ~round:1 payload)
      .Vuvuzela_mixnet.Onion.onion
  in
  ignore (Chain.dialing_round_exn chain ~round:1 ~m [| wrap (Dialing.noop ~rng ()) |]);
  (* No real invitation anywhere: scans find nothing. *)
  for i = 0 to m - 1 do
    let drop = Chain.fetch_invitations chain ~index:i in
    Alcotest.(check int) "no decryptable invitations" 0
      (List.length (Dialing.scan ~identity:bob drop))
  done

let test_dialing_out_of_range_index_dropped () =
  let chain = make_chain () in
  let rng = Drbg.of_string "t9" in
  let m = 2 in
  (* An adversarial client addresses drop 7 with m=2: discarded. *)
  let payload = Dialing.noise ~rng ~index:7 () in
  let onion =
    (Vuvuzela_mixnet.Onion.wrap ~rng ~server_pks:(Chain.public_keys chain)
       ~round:1 payload)
      .Vuvuzela_mixnet.Onion.onion
  in
  let acks = Chain.dialing_round_exn chain ~round:1 ~m [| onion |] in
  Alcotest.(check int) "still acked (uniform replies)" 1 (Array.length acks)

let suite =
  let tc = Alcotest.test_case in
  ( "server",
    [
      tc "exchange between two users" `Quick test_chain_exchange_two_users;
      tc "idle user reads nothing" `Quick test_chain_idle_user_gets_nothing;
      tc "histogram includes noise" `Quick test_histogram_includes_noise;
      tc "noise metrics per server" `Quick test_noise_metrics;
      tc "invalid onion keeps alignment" `Quick test_invalid_onion_keeps_alignment;
      tc "empty round" `Quick test_empty_round;
      tc "single-server chain" `Quick test_single_server_chain;
      tc "rounds are independent (replay)" `Quick test_rounds_are_independent;
      tc "backward unknown round" `Quick test_backward_unknown_round;
      tc "dialing end to end" `Quick test_dialing_end_to_end;
      tc "dialing noop not delivered" `Quick test_dialing_noop_not_delivered;
      tc "dialing out-of-range index" `Quick test_dialing_out_of_range_index_dropped;
    ] )

(* The replay/tagging attack and its defense: duplicating a victim's
   onion must NOT produce a third access to her dead drop (m_more is
   observable and uncovered by noise). *)
let test_replay_dedup () =
  let chain = make_chain () in
  let rng = Drbg.of_string "t-replay" in
  let round = 4 in
  let ma = Message.Data { seq = 1; ack = 0; text = "victim" } in
  let mb = Message.Data { seq = 1; ack = 0; text = "partner" } in
  let sa, wa = request ~rng ~chain ~round ~peer:bob.Types.public alice ma in
  let _, wb = request ~rng ~chain ~round ~peer:alice.Types.public bob mb in
  (* The adversary injects an exact copy of Alice's onion. *)
  let results =
    Chain.conversation_round_exn chain ~round [| wa.onion; wb.onion; wa.onion |]
  in
  (match Chain.observed_histogram chain with
  | Some h ->
      Alcotest.(check int) "no 3-access drop (replay deduplicated)" 0
        h.Deaddrop.m_more
  | None -> Alcotest.fail "no histogram");
  Alcotest.(check int) "duplicate counted" 1
    (Server.metrics (Chain.server chain 0)).Server.duplicate_requests;
  (* The genuine pair still exchanged. *)
  (match Vuvuzela_mixnet.Onion.unwrap_reply ~secrets:wa.secrets ~round results.(0) with
  | None -> Alcotest.fail "alice reply unwrap failed"
  | Some result -> (
      match Conversation.read_result sa ~round result with
      | Some m -> Alcotest.(check bool) "exchange intact" true (Message.equal m mb)
      | None -> Alcotest.fail "alice got nothing"));
  (* The duplicate slot still got a same-size (garbage) reply. *)
  Alcotest.(check int) "replayed slot reply size"
    (Bytes.length results.(0))
    (Bytes.length results.(2))

(* Wrong-sized onions are rejected at ingress before mixing. *)
let test_size_uniformity_ingress () =
  let chain = make_chain () in
  let rng = Drbg.of_string "t-size" in
  let round = 5 in
  let _, wa = request ~rng ~chain ~round ~peer:bob.Types.public alice (Message.Empty { ack = 0 }) in
  let short = Drbg.generate rng (Bytes.length wa.onion - 1) in
  let long = Drbg.generate rng (Bytes.length wa.onion + 48) in
  let results = Chain.conversation_round_exn chain ~round [| short; wa.onion; long |] in
  Alcotest.(check int) "all slots answered" 3 (Array.length results);
  Alcotest.(check int) "both rejected at server 0" 2
    (Server.metrics (Chain.server chain 0)).Server.invalid_requests

let suite =
  ( fst suite,
    snd suite
    @ [
        Alcotest.test_case "replay attack deduplicated" `Quick test_replay_dedup;
        Alcotest.test_case "size uniformity at ingress" `Quick test_size_uniformity_ingress;
      ] )

(* Protocol-level observable invariant: in deterministic-noise mode, the
   last server's histogram is exactly
     m2 = (#reciprocated pairs) + servers_noising × ⌈µ/2⌉
     m1 = (#unreciprocated/idle requests) + servers_noising × ⌈µ⌉
   for ANY population shape. *)
let qcheck_observable_invariant =
  QCheck.Test.make ~name:"histogram invariant for any population" ~count:12
    QCheck.(pair (int_range 0 4) (int_range 0 5))
    (fun (n_pairs, n_idle) ->
      let chain = make_chain () in
      let rng = Drbg.of_string "prop-hist" in
      let round = 1 in
      let requests = ref [] in
      for i = 0 to n_pairs - 1 do
        let a = Types.identity_of_seed (Bytes.of_string (Printf.sprintf "pa%d" i)) in
        let b = Types.identity_of_seed (Bytes.of_string (Printf.sprintf "pb%d" i)) in
        let _, wa = request ~rng ~chain ~round ~peer:b.Types.public a (Message.Empty { ack = 0 }) in
        let _, wb = request ~rng ~chain ~round ~peer:a.Types.public b (Message.Empty { ack = 0 }) in
        requests := wb.onion :: wa.onion :: !requests
      done;
      for i = 0 to n_idle - 1 do
        let u = Types.identity_of_seed (Bytes.of_string (Printf.sprintf "pi%d" i)) in
        let _, w = request ~rng ~chain ~round u (Message.Empty { ack = 0 }) in
        requests := w.onion :: !requests
      done;
      ignore (Chain.conversation_round_exn chain ~round (Array.of_list !requests));
      match Chain.observed_histogram chain with
      | Some h ->
          (* tiny_noise µ=5: 2 noising servers × 5 singles, × 3 pairs. *)
          h.Deaddrop.m2 = n_pairs + (2 * 3)
          && h.Deaddrop.m1 = n_idle + (2 * 5)
          && h.Deaddrop.m_more = 0
      | None -> false)

let suite =
  ( fst suite,
    snd suite @ [ QCheck_alcotest.to_alcotest ~long:false qcheck_observable_invariant ] )
