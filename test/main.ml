let () =
  Alcotest.run "vuvuzela"
    [
      Test_crypto.suite;
      Test_aead_wycheproof.suite;
      Test_ed25519.suite;
      Test_dp.suite;
      Test_mixnet.suite;
      Test_protocol.suite;
      Test_server.suite;
      Test_client.suite;
      Test_multiconv.suite;
      Test_network.suite;
      Test_transcript.suite;
      Test_transport.suite;
      Test_evloop.suite;
      Test_ratchet.suite;
      Test_certified.suite;
      Test_infra.suite;
      Test_faults.suite;
      Test_parallel.suite;
      Test_telemetry.suite;
      Test_sim.suite;
      Test_workload.suite;
      Test_scale_plane.suite;
      Test_attack.suite;
    ]
