(* Chaos suite: randomized multi-fault schedules under fixed seeds.

   A seeded [Fault.random_plan] drives crashes, dropped links, corrupted
   frames, hour-long stalls, and tampered onions into a live deployment
   while pairs of clients keep talking.  The invariants are the
   supervisor's contract:

   - attempts per round stay within 1 + max_retries;
   - no onion ciphertext is ever observed twice on any link (every retry
     rebuilds requests with fresh ephemeral keys);
   - noise is redrawn for every attempt;
   - every queued message is delivered exactly once, in order, after the
     faults clear;
   - the whole run — reports included — is bit-deterministic under the
     seed, at any job count.

   Runtime is bounded: fixed seeds, fixed round counts, a small
   population. *)

open Vuvuzela_dp
open Vuvuzela
module Fault = Vuvuzela_faults.Fault
module Drbg = Vuvuzela_crypto.Drbg
module Bytes_util = Vuvuzela_crypto.Bytes_util

let max_retries = 3
let n_pairs = 3
let msgs_per_sender = 3

(* Render a report without its wall-clock field, which is the one thing
   legitimately different between reruns. *)
let normalize_report (r : Network.round_report) =
  Format.asprintf "%s%d att=%d batch=%d wire=%d acks=%d aborts=[%s] %s {%s}"
    (if r.dialing then "dial" else "conv")
    r.round r.attempts r.batch_size r.wire_bytes r.confirmed_acks
    (String.concat ";"
       (List.map (Format.asprintf "%a" Rpc.pp_status) r.aborts))
    (match r.failure with
    | None -> "ok"
    | Some st -> Format.asprintf "FAILED(%a)" Rpc.pp_status st)
    (String.concat "; "
       (List.map
          (fun (c, evs) ->
            String.sub (Bytes_util.to_hex (Client.public_key c)) 0 8
            ^ ":"
            ^ String.concat ","
                (List.map (Format.asprintf "%a" Client.pp_event) evs))
          r.events))

(* One full chaos run: returns the normalized reports plus everything
   the invariants need. *)
let scenario ?pipeline_chunk ~seed ~jobs () =
  let plan =
    Fault.random_plan
      ~rng:(Drbg.of_string ("chaos-plan-" ^ seed))
      ~rounds:10 ~n_servers:3 ~faults:6 ()
  in
  let wire = Hashtbl.create 4096 in
  let duplicates = ref 0 in
  let tap ~round:_ ~server:_ batch =
    Array.iter
      (fun onion ->
        let key = Bytes.to_string onion in
        if Hashtbl.mem wire key then incr duplicates
        else Hashtbl.add wire key ())
      batch
  in
  let net =
    Network.of_config
      Network.Config.(
        default
        |> with_seed ("chaos-net-" ^ seed)
        |> with_noise (Laplace.params ~mu:3. ~b:1.)
        |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_noise_mode Noise.Sampled |> with_jobs jobs
        |> with_fault_plan plan |> with_tap tap
        |> with_round_deadline_ms 60_000.
        |> with_max_retries max_retries
        |>
        match pipeline_chunk with
        | None -> Fun.id
        | Some chunk -> with_pipeline ~chunk true)
  in
  let clients =
    Array.init (2 * n_pairs) (fun i ->
        Network.connect ~seed:(Printf.sprintf "chaos-c%d" i) net)
  in
  for p = 0 to n_pairs - 1 do
    let a = clients.(2 * p) and b = clients.((2 * p) + 1) in
    Client.start_conversation a ~peer_pk:(Client.public_key b);
    Client.start_conversation b ~peer_pk:(Client.public_key a);
    for k = 1 to msgs_per_sender do
      Client.send a (Printf.sprintf "p%d/a%d" p k);
      Client.send b (Printf.sprintf "p%d/b%d" p k)
    done
  done;
  (* The faulted window, then a quiet drain so retransmissions finish. *)
  let reports = Network.run_schedule ~dial_every:4 net ~rounds:12 in
  let reports = reports @ Network.run_rounds net 14 in
  Network.shutdown net;
  let delivered = Hashtbl.create 16 in
  List.iter
    (fun (c, evs) ->
      List.iter
        (function
          | Client.Delivered { text; _ } ->
              let k = Bytes.to_string (Client.public_key c) in
              Hashtbl.replace delivered k
                (text :: Option.value ~default:[] (Hashtbl.find_opt delivered k))
          | _ -> ())
        evs)
    (Network.events_of reports);
  let received_by c =
    List.rev
      (Option.value ~default:[]
         (Hashtbl.find_opt delivered (Bytes.to_string (Client.public_key c))))
  in
  ( List.map normalize_report reports,
    reports,
    !duplicates,
    Array.to_list (Array.map received_by clients) )

let expect_received =
  (* Pair p: client 2p receives b-texts, client 2p+1 receives a-texts. *)
  List.concat
    (List.init n_pairs (fun p ->
         [
           List.init msgs_per_sender (fun k -> Printf.sprintf "p%d/b%d" p (k + 1));
           List.init msgs_per_sender (fun k -> Printf.sprintf "p%d/a%d" p (k + 1));
         ]))

let test_chaos_invariants () =
  let _, reports, duplicates, received = scenario ~seed:"s1" ~jobs:1 () in
  (* The plan actually bit: at least one attempt was aborted. *)
  let total_aborts =
    List.fold_left (fun n r -> n + List.length r.Network.aborts) 0 reports
  in
  if total_aborts = 0 then
    Alcotest.fail "chaos plan never fired — the schedule tests nothing";
  (* Bounded retries. *)
  List.iter
    (fun r ->
      if r.Network.attempts > 1 + max_retries then
        Alcotest.failf "round %d took %d attempts (max %d)" r.Network.round
          r.Network.attempts (1 + max_retries))
    reports;
  (* Fresh onions: nothing crossed any link twice, across all attempts
     of all rounds. *)
  Alcotest.(check int) "no onion ciphertext observed twice" 0 duplicates;
  (* Exactly-once, in-order delivery once the faults cleared. *)
  List.iteri
    (fun i (got, want) ->
      if got <> want then
        Alcotest.failf "client %d received [%s], wanted [%s]" i
          (String.concat "," got) (String.concat "," want))
    (List.combine received expect_received)

let test_chaos_deterministic_across_jobs () =
  let norm1, _, _, recv1 = scenario ~seed:"s1" ~jobs:1 () in
  let norm1', _, _, _ = scenario ~seed:"s1" ~jobs:1 () in
  Alcotest.(check (list string)) "rerun is bit-identical" norm1 norm1';
  List.iter
    (fun jobs ->
      let normj, _, _, recvj = scenario ~seed:"s1" ~jobs () in
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d reports match jobs=1" jobs)
        norm1 normj;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d deliveries match jobs=1" jobs)
        true (recv1 = recvj))
    [ 2; 4 ]

let test_chaos_pipelined_matches_lockstep () =
  (* The streamed relay under the same crash/tamper/delay schedule:
     every fault still fires against the whole logical batch, so the
     pipelined transcript — reports, aborts, retries, deliveries — is
     byte-identical to the lockstep one. *)
  let norm, _, _, recv = scenario ~seed:"s1" ~jobs:1 () in
  List.iter
    (fun (jobs, chunk) ->
      let normp, _, dupp, recvp =
        scenario ~pipeline_chunk:chunk ~seed:"s1" ~jobs ()
      in
      let label = Printf.sprintf "jobs=%d chunk=%d" jobs chunk in
      Alcotest.(check (list string))
        (label ^ " reports match lockstep") norm normp;
      Alcotest.(check int) (label ^ " no duplicate onions") 0 dupp;
      Alcotest.(check bool)
        (label ^ " deliveries match lockstep") true (recv = recvp))
    [ (1, 1); (1, 4); (2, 3); (4, 16) ]

let test_noise_redrawn_across_attempts () =
  (* Deterministic two-attempt round: a crash at the last server's link
     leaves server 0's forwarded batch observable (at server 1's link)
     for both the failed attempt and its retry.  Redrawn noise makes the
     two batch sizes differ under this seed. *)
  let plan = Result.get_ok (Fault.parse "crash@2:2") in
  let sizes = Hashtbl.create 8 in
  let tap ~round ~server batch =
    if server = 1 then Hashtbl.replace sizes round (Array.length batch)
  in
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "chaos-noise-redraw"
        |> with_noise (Laplace.params ~mu:3. ~b:1.)
        |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_noise_mode Noise.Sampled |> with_fault_plan plan
        |> with_tap tap |> with_max_retries 2)
  in
  let _ = Network.connect ~seed:"nr-a" net in
  let _ = Network.connect ~seed:"nr-b" net in
  ignore (Network.run_rounds net 2);
  Network.shutdown net;
  match (Hashtbl.find_opt sizes 2, Hashtbl.find_opt sizes 3) with
  | Some s1, Some s2 ->
      if s1 = s2 then
        Alcotest.failf "attempt and retry forwarded %d onions each: noise \
                        was not redrawn" s1
  | _ -> Alcotest.fail "tap missed an attempt"

let () =
  Alcotest.run "vuvuzela-chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "randomized faults: supervisor invariants" `Quick
            test_chaos_invariants;
          Alcotest.test_case "bit-deterministic at jobs 1/2/4" `Quick
            test_chaos_deterministic_across_jobs;
          Alcotest.test_case "pipelined relay matches lockstep under faults"
            `Quick test_chaos_pipelined_matches_lockstep;
          Alcotest.test_case "noise redrawn across attempts" `Quick
            test_noise_redrawn_across_attempts;
        ] );
    ]
