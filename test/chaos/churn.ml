(* Churn chaos suite: WAN-style degradation under a seeded schedule.

   Where [chaos.ml] drives crashes and corruption, this suite drives the
   churn fault family — [Flap], [Slow_link], [Partition] from
   [Fault.random_churn_plan] — together with the admission window
   (stragglers excluded per round) and client flaps (blocked clients),
   all drawn from fixed seeds.  The invariants are graceful degradation,
   not perfection:

   - every queued message is still delivered exactly once, in order,
     once the churn clears;
   - no onion ciphertext is ever observed twice on any link;
   - attempts per round stay within 1 + max_retries;
   - the admission decisions — who was admitted, who was told to come
     back next round — and the full report transcript replay
     bit-identically under each seed, at any job count. *)

open Vuvuzela_dp
open Vuvuzela
module Fault = Vuvuzela_faults.Fault
module Drbg = Vuvuzela_crypto.Drbg
module Bytes_util = Vuvuzela_crypto.Bytes_util

let max_retries = 3
let n_pairs = 5 (* 10-client schedule *)
let msgs_per_sender = 2
let churn_rounds = 12
let drain_rounds = 14

(* Render a report without its wall-clock field; everything else —
   including the admission split — must replay bit for bit. *)
let normalize_report (r : Network.round_report) =
  Format.asprintf
    "%s%d att=%d batch=%d adm=%d late=%d wire=%d acks=%d aborts=[%s] %s {%s}"
    (if r.dialing then "dial" else "conv")
    r.round r.attempts r.batch_size r.admitted r.late r.wire_bytes
    r.confirmed_acks
    (String.concat ";"
       (List.map (Format.asprintf "%a" Rpc.pp_status) r.aborts))
    (match r.failure with
    | None -> "ok"
    | Some st -> Format.asprintf "FAILED(%a)" Rpc.pp_status st)
    (String.concat "; "
       (List.map
          (fun (c, evs) ->
            String.sub (Bytes_util.to_hex (Client.public_key c)) 0 8
            ^ ":"
            ^ String.concat ","
                (List.map (Format.asprintf "%a" Client.pp_event) evs))
          r.events))

(* One full churn run.  The churn window runs server faults + admission
   + client flaps; the drain phase is quiet (links healed, window off)
   so retransmissions can finish. *)
let scenario ~seed ~jobs () =
  let plan =
    Fault.random_churn_plan
      ~rng:(Drbg.of_string ("churn-plan-" ^ seed))
      ~rounds:churn_rounds ~n_servers:3 ~faults:6 ()
  in
  let wire = Hashtbl.create 4096 in
  let duplicates = ref 0 in
  let tap ~round:_ ~server:_ batch =
    Array.iter
      (fun onion ->
        let key = Bytes.to_string onion in
        if Hashtbl.mem wire key then incr duplicates
        else Hashtbl.add wire key ())
      batch
  in
  let net =
    Network.of_config
      Network.Config.(
        default
        |> with_seed ("churn-net-" ^ seed)
        |> with_noise (Laplace.params ~mu:3. ~b:1.)
        |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_noise_mode Noise.Sampled |> with_jobs jobs
        |> with_fault_plan plan |> with_tap tap
        |> with_round_deadline_ms 60_000.
        |> with_max_retries max_retries
        |> with_admission_ms 10.
        |> with_client_latency ~base_ms:5. ~jitter_ms:8.)
  in
  let clients =
    Array.init (2 * n_pairs) (fun i ->
        Network.connect ~seed:(Printf.sprintf "churn-c%d" i) net)
  in
  for p = 0 to n_pairs - 1 do
    let a = clients.(2 * p) and b = clients.((2 * p) + 1) in
    Client.start_conversation a ~peer_pk:(Client.public_key b);
    Client.start_conversation b ~peer_pk:(Client.public_key a);
    for k = 1 to msgs_per_sender do
      Client.send a (Printf.sprintf "p%d/a%d" p k);
      Client.send b (Printf.sprintf "p%d/b%d" p k)
    done
  done;
  (* Client flaps: each churn round, each client independently drops
     offline with probability 1/5, drawn from its own seeded stream so
     the outage pattern replays. *)
  let flap_rng = Drbg.of_string ("churn-flap-" ^ seed) in
  let reports = ref [] in
  for _ = 1 to churn_rounds do
    let offline = Hashtbl.create 8 in
    Array.iter
      (fun c ->
        if Drbg.uniform ~rng:flap_rng 5 = 0 then
          Hashtbl.replace offline (Bytes.to_string (Client.public_key c)) ())
      clients;
    let blocked c =
      Hashtbl.mem offline (Bytes.to_string (Client.public_key c))
    in
    reports := Network.run ~blocked ~kind:Round.Conversation net :: !reports
  done;
  (* The WAN heals: no more faults (the plan is spent), window off,
     everyone back online. *)
  Network.set_admission_ms net None;
  let reports =
    List.rev !reports @ Network.run_rounds net drain_rounds
  in
  Network.shutdown net;
  let delivered = Hashtbl.create 16 in
  List.iter
    (fun (c, evs) ->
      List.iter
        (function
          | Client.Delivered { text; _ } ->
              let k = Bytes.to_string (Client.public_key c) in
              Hashtbl.replace delivered k
                (text :: Option.value ~default:[] (Hashtbl.find_opt delivered k))
          | _ -> ())
        evs)
    (Network.events_of reports);
  let received_by c =
    List.rev
      (Option.value ~default:[]
         (Hashtbl.find_opt delivered (Bytes.to_string (Client.public_key c))))
  in
  ( List.map normalize_report reports,
    reports,
    !duplicates,
    Array.to_list (Array.map received_by clients) )

let expect_received =
  List.concat
    (List.init n_pairs (fun p ->
         [
           List.init msgs_per_sender (fun k -> Printf.sprintf "p%d/b%d" p (k + 1));
           List.init msgs_per_sender (fun k -> Printf.sprintf "p%d/a%d" p (k + 1));
         ]))

let seeds = [ "c1"; "c2"; "c3" ]

let test_churn_invariants () =
  let some_abort = ref false in
  List.iter
    (fun seed ->
      let _, reports, duplicates, received = scenario ~seed ~jobs:1 () in
      (* The window actually excluded someone: degradation, not a no-op. *)
      let total_late =
        List.fold_left (fun n r -> n + r.Network.late) 0 reports
      in
      if total_late = 0 then
        Alcotest.failf "seed %s: no straggler was ever excluded" seed;
      if List.exists (fun r -> not (r.Network.aborts = [])) reports then
        some_abort := true;
      (* Bounded retries, even mid-churn. *)
      List.iter
        (fun r ->
          if r.Network.attempts > 1 + max_retries then
            Alcotest.failf "seed %s round %d took %d attempts (max %d)" seed
              r.Network.round r.Network.attempts (1 + max_retries))
        reports;
      (* No round ultimately failed: churn degrades, never kills. *)
      (match Network.failures_of reports with
      | [] -> ()
      | st :: _ ->
          Alcotest.failf "seed %s: round failed outright: %s" seed
            (Format.asprintf "%a" Rpc.pp_status st));
      (* Fresh onions on every attempt and every re-admission. *)
      Alcotest.(check int)
        (Printf.sprintf "seed %s: no onion observed twice" seed)
        0 duplicates;
      (* Exactly-once, in-order delivery once the churn cleared. *)
      List.iteri
        (fun i (got, want) ->
          if got <> want then
            Alcotest.failf "seed %s client %d received [%s], wanted [%s]" seed
              i (String.concat "," got) (String.concat "," want))
        (List.combine received expect_received))
    seeds;
  (* Across the seed set, the partition faults must have bitten at least
     once (the per-seed plans are fixed draws, so this is stable). *)
  Alcotest.(check bool) "some attempt was aborted by churn" true !some_abort

let test_churn_deterministic () =
  (* Same seed → identical transcripts (admission decisions included),
     for every seed in the set. *)
  List.iter
    (fun seed ->
      let norm, _, _, recv = scenario ~seed ~jobs:1 () in
      let norm', _, _, recv' = scenario ~seed ~jobs:1 () in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %s transcript replays" seed)
        norm norm';
      Alcotest.(check bool)
        (Printf.sprintf "seed %s deliveries replay" seed)
        true (recv = recv'))
    seeds;
  (* Different seeds → different churn (the schedule isn't degenerate). *)
  let n1, _, _, _ = scenario ~seed:"c1" ~jobs:1 () in
  let n2, _, _, _ = scenario ~seed:"c2" ~jobs:1 () in
  Alcotest.(check bool) "seeds actually differ" false (n1 = n2)

let test_churn_deterministic_across_jobs () =
  let norm, _, _, recv = scenario ~seed:"c1" ~jobs:1 () in
  let norm4, _, _, recv4 = scenario ~seed:"c1" ~jobs:4 () in
  Alcotest.(check (list string)) "jobs=4 transcript matches jobs=1" norm norm4;
  Alcotest.(check bool) "jobs=4 deliveries match jobs=1" true (recv = recv4)

let () =
  Alcotest.run "vuvuzela-churn"
    [
      ( "churn",
        [
          Alcotest.test_case "churn schedule: degradation invariants" `Quick
            test_churn_invariants;
          Alcotest.test_case "bit-deterministic under 3 seeds" `Quick
            test_churn_deterministic;
          Alcotest.test_case "bit-deterministic at jobs 4" `Quick
            test_churn_deterministic_across_jobs;
        ] );
    ]
