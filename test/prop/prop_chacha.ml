(* Differential suite gating the optimized ChaCha20: the unrolled
   fast path against the retained seed oracle [Chacha20_ref], over
   random (key, nonce, counter, length) with lengths straddling every
   block boundary the 64-byte/8-byte loop structure cares about, and
   offsets exercising the 8-byte-XOR tail.  The counters include
   0xffffffff so the 32-bit block-counter wraparound is compared against
   the oracle, not just assumed. *)

open Vuvuzela_crypto

let boundary_lens = [ 0; 1; 63; 64; 65; 127; 128; 8191 ]

let gen_key_nonce rng =
  let key = Drbg.generate rng Chacha20.key_len in
  let nonce = Drbg.generate rng Chacha20.nonce_len in
  (key, nonce)

(* Mix fixed edge counters (0, 1, wraparound neighbours) with uniform
   32-bit draws. *)
let gen_counter rng =
  match Drbg.uniform ~rng 6 with
  | 0 -> 0
  | 1 -> 1
  | 2 -> 2
  | 3 -> 0xffffffff
  | 4 -> 0xfffffffe
  | _ -> Drbg.uniform ~rng 0x100000000

let hex = Bytes_util.to_hex

let run () =
  Prop.suite "chacha20 fast path vs seed oracle";
  Prop.check ~name:"keystream fast = ref at boundary lengths" ~count:150
    (fun rng ->
      let key, nonce = gen_key_nonce rng in
      (key, nonce, gen_counter rng))
    (fun (key, nonce, counter) ->
      List.iter
        (fun len ->
          Prop.check_hex
            ~what:(Printf.sprintf "keystream len %d ctr %#x" len counter)
            (hex (Chacha20_ref.keystream ~key ~nonce ~counter len))
            (hex (Chacha20.keystream ~key ~nonce ~counter len)))
        boundary_lens);
  Prop.check ~name:"encrypt fast = ref at random lengths" ~count:400
    (fun rng ->
      let key, nonce = gen_key_nonce rng in
      let counter = gen_counter rng in
      let len = Drbg.uniform ~rng 1500 in
      (key, nonce, counter, Drbg.generate rng len))
    (fun (key, nonce, counter, pt) ->
      Prop.check_hex
        ~what:
          (Printf.sprintf "encrypt len %d ctr %#x" (Bytes.length pt) counter)
        (hex (Chacha20_ref.encrypt ~counter ~key ~nonce pt))
        (hex (Chacha20.encrypt ~counter ~key ~nonce pt));
      (* involution: decrypt . encrypt = id on the fast path *)
      Prop.require
        (Bytes.equal pt
           (Chacha20.decrypt ~counter ~key ~nonce
              (Chacha20.encrypt ~counter ~key ~nonce pt)))
        "encrypt/decrypt not an involution (len %d)" (Bytes.length pt));
  Prop.check ~name:"xor_into at misaligned offsets = ref" ~count:400
    (fun rng ->
      let key, nonce = gen_key_nonce rng in
      let counter = gen_counter rng in
      let src_off = Drbg.uniform ~rng 8 in
      let dst_off = Drbg.uniform ~rng 8 in
      let len =
        match Drbg.uniform ~rng 4 with
        | 0 -> List.nth boundary_lens (Drbg.uniform ~rng 7)
        | _ -> Drbg.uniform ~rng 300
      in
      let src = Drbg.generate rng (src_off + len + 3) in
      (key, nonce, counter, src, src_off, dst_off, len))
    (fun (key, nonce, counter, src, src_off, dst_off, len) ->
      let dst = Bytes.make (dst_off + len + 5) '\x7e' in
      Chacha20.xor_into ~key ~nonce ~counter ~src ~src_off ~dst ~dst_off ~len;
      let expected =
        Chacha20_ref.encrypt ~counter ~key ~nonce (Bytes.sub src src_off len)
      in
      Prop.check_hex
        ~what:
          (Printf.sprintf "xor_into src_off %d dst_off %d len %d" src_off
             dst_off len)
        (hex expected)
        (hex (Bytes.sub dst dst_off len));
      (* bytes outside the destination range must be untouched *)
      Prop.require
        (Bytes.sub_string dst 0 dst_off = String.make dst_off '\x7e'
        && Bytes.sub_string dst (dst_off + len) 5 = String.make 5 '\x7e')
        "xor_into wrote outside its range (dst_off %d len %d)" dst_off len);
  Prop.check ~name:"keystream_into at offsets = ref" ~count:150
    (fun rng ->
      let key, nonce = gen_key_nonce rng in
      let counter = gen_counter rng in
      let off = Drbg.uniform ~rng 8 in
      let len = List.nth boundary_lens (Drbg.uniform ~rng 8) in
      (key, nonce, counter, off, len))
    (fun (key, nonce, counter, off, len) ->
      let buf = Bytes.make (off + len + 2) '\x11' in
      Chacha20.keystream_into ~key ~nonce ~counter buf ~off ~len;
      Prop.check_hex
        ~what:(Printf.sprintf "keystream_into off %d len %d" off len)
        (hex (Chacha20_ref.keystream ~key ~nonce ~counter len))
        (hex (Bytes.sub buf off len));
      Prop.require
        (Bytes.sub_string buf 0 off = String.make off '\x11'
        && Bytes.sub_string buf (off + len) 2 = "\x11\x11")
        "keystream_into wrote outside its range (off %d len %d)" off len);
  (* Deterministic wraparound pin: a stream beginning at the last 32-bit
     block counter must continue exactly like the oracle's (which wraps
     back to block 0). *)
  Prop.vector ~name:"counter 0xffffffff wraparound (fast = ref)" (fun () ->
      let key = Bytes.init 32 (fun i -> Char.chr (i * 7 land 0xff)) in
      let nonce = Bytes.init 12 (fun i -> Char.chr (0x30 + i)) in
      List.iter
        (fun counter ->
          let len = 192 in
          Prop.check_hex
            ~what:(Printf.sprintf "wraparound ctr %#x" counter)
            (hex (Chacha20_ref.keystream ~key ~nonce ~counter len))
            (hex (Chacha20.keystream ~key ~nonce ~counter len)))
        [ 0xffffffff; 0xfffffffe ])
