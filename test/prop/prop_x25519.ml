(* X25519: full-ladder differential agreement against the seed
   implementation, plus Wycheproof-style edge-case vectors and the
   RFC 7748 iterated test. *)

open Vuvuzela_crypto

let hex = Bytes_util.to_hex
let of_hex = Bytes_util.of_hex

(* The seven low-order points of Curve25519 (libsodium's blacklist):
   u = 0, u = 1, the two order-8 points, and the non-canonical encodings
   p - 1, p, p + 1.  A clamped scalar is ≡ 0 (mod 8), so the ladder maps
   every one of them to the neutral element, encoded as all zeros. *)
let low_order_points =
  [
    "0000000000000000000000000000000000000000000000000000000000000000";
    "0100000000000000000000000000000000000000000000000000000000000000";
    "e0eb7a7c3b41b8ae1656e3faf19fc46ada098deb9c32b1fd866205165f49b800";
    "5f9c95bca3508c24b1d0b1559c83ef5b04445cc4581c8e86d8224eddd09f1157";
    "ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f";
    "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f";
    "eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f";
  ]

let run () =
  Prop.suite "x25519 (51-bit ladder) vs curve25519_ref (seed ladder)";
  (* ≥200 full ladder agreements over arbitrary scalar/point bytes. *)
  Prop.check ~name:"x25519 ladder agreement" ~count:200
    Prop.(gen_pair (gen_bytes 32) (gen_bytes 32))
    (fun (scalar, point) ->
      Prop.check_hex
        ~what:
          (Printf.sprintf "scalarmult(%s, %s)" (hex scalar) (hex point))
        (hex (Curve25519_ref.scalarmult ~scalar ~point))
        (hex (Curve25519.scalarmult ~scalar ~point)));
  (* The fixed-base (keygen) path must agree with both the reference
     ladder and our own variable-base ladder. *)
  Prop.check ~name:"x25519 fixed-base = ref and general" ~count:100
    (Prop.gen_bytes 32) (fun scalar ->
      let fixed = Curve25519.scalarmult_base scalar in
      Prop.check_hex
        ~what:(Printf.sprintf "scalarmult_base(%s) vs ref" (hex scalar))
        (hex (Curve25519_ref.scalarmult_base scalar))
        (hex fixed);
      Prop.check_hex
        ~what:(Printf.sprintf "scalarmult_base(%s) vs general" (hex scalar))
        (hex
           (Curve25519.scalarmult ~scalar ~point:Curve25519.base_point))
        (hex fixed));
  (* Wycheproof-style edges. *)
  Prop.check ~name:"low-order points map to zero" ~count:25
    (Prop.gen_bytes 32) (fun scalar ->
      List.iter
        (fun p_hex ->
          let point = of_hex p_hex in
          let out = Curve25519.scalarmult ~scalar ~point in
          Prop.require
            (Bytes.equal out (Bytes.make 32 '\000'))
            "low-order point %s did not map to zero (got %s)" p_hex
            (hex out);
          Prop.check_hex
            ~what:(Printf.sprintf "ref agrees on low-order %s" p_hex)
            (hex (Curve25519_ref.scalarmult ~scalar ~point))
            (hex out))
        low_order_points);
  Prop.check ~name:"u-coordinate high bit is masked" ~count:100
    Prop.(gen_pair (gen_bytes 32) (gen_bytes 32))
    (fun (scalar, point) ->
      let masked = Bytes.copy point in
      Bytes_util.set_u8 masked 31 (Bytes_util.get_u8 masked 31 land 0x7f);
      let set = Bytes.copy point in
      Bytes_util.set_u8 set 31 (Bytes_util.get_u8 set 31 lor 0x80);
      Prop.check_hex
        ~what:(Printf.sprintf "high bit ignored on %s" (hex point))
        (hex (Curve25519.scalarmult ~scalar ~point:masked))
        (hex (Curve25519.scalarmult ~scalar ~point:set)));
  (* Non-canonical encodings: u and u + p encode the same field element
     (for u < 19, u + p still fits in 255 bits). *)
  Prop.check ~name:"non-canonical u (u vs u + p)" ~count:100
    (Prop.gen_bytes 33) (fun b ->
      let scalar = Bytes.sub b 0 32 in
      let u = Bytes_util.get_u8 b 32 mod 19 in
      let canonical = Bytes.make 32 '\000' in
      Bytes_util.set_u8 canonical 0 u;
      (* u + p = u - 19 + 2^255 *)
      let shifted = Bytes.make 32 '\xff' in
      Bytes_util.set_u8 shifted 0 (0xed + u);
      Bytes_util.set_u8 shifted 31 0x7f;
      Prop.check_hex
        ~what:(Printf.sprintf "u=%d vs u+p" u)
        (hex (Curve25519.scalarmult ~scalar ~point:canonical))
        (hex (Curve25519.scalarmult ~scalar ~point:shifted)));
  (* RFC 7748 §5.2 iterated vector, 1000 iterations (on the fast
     implementation; the alcotest suite keeps its own copy). *)
  Prop.vector ~name:"rfc7748 iterated ladder (1k)" (fun () ->
      let k =
        ref
          (of_hex
             "0900000000000000000000000000000000000000000000000000000000000000")
      in
      let u = ref !k in
      for i = 1 to 1000 do
        let r = Curve25519.scalarmult ~scalar:!k ~point:!u in
        u := !k;
        k := r;
        if i = 1 then
          Prop.check_hex ~what:"after 1 iteration"
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
            (hex !k)
      done;
      Prop.check_hex ~what:"after 1000 iterations"
        "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        (hex !k))
