(* Runner for the differential property-test harness.  Part of the
   default `dune runtest`; `dune build @prop` runs just this suite.
   Rerun a failure with PROP_SEED set to the master seed printed in the
   report. *)

let () =
  Printf.printf "differential property tests (master seed %S)\n"
    Prop.master_seed;
  Prop_fe.run ();
  Prop_x25519.run ();
  Prop_ed25519.run ();
  Prop_chacha.run ();
  Prop_aead.run ();
  Prop_pool.run ();
  Prop_deaddrop.run ();
  Prop.exit_summary ()
