(* ChaCha20-Poly1305 boundary tests: empty AAD, empty plaintext, and
   lengths crossing the 64-byte block boundary (63/64/65), round-tripped
   through the raw AEAD, through Box (X25519 + HKDF key agreement over
   the rewritten field), and through full onion seal/open. *)

open Vuvuzela_crypto
open Vuvuzela_mixnet

(* The block-boundary plaintext lengths; 0 also covers the empty
   plaintext requirement. *)
let boundary_lens = [ 0; 1; 63; 64; 65; 128; 257 ]

let gen_material rng =
  let key = Drbg.generate rng Aead.key_len in
  let nonce = Drbg.generate rng Aead.nonce_len in
  let aad = Drbg.generate rng 24 in
  let big = Drbg.generate rng 257 in
  (key, nonce, aad, big)

let run () =
  Prop.suite "chacha20-poly1305 boundaries (aead / box / onion)";
  Prop.check ~name:"aead roundtrip at block boundaries" ~count:100
    gen_material (fun (key, nonce, aad, big) ->
      List.iter
        (fun len ->
          let pt = Bytes.sub big 0 len in
          List.iter
            (fun aad ->
              let ct = Aead.seal ~key ~nonce ~aad pt in
              Prop.require
                (Bytes.length ct = len + Aead.tag_len)
                "len %d: ciphertext length %d, want %d" len (Bytes.length ct)
                (len + Aead.tag_len);
              match Aead.open_ ~key ~nonce ~aad ct with
              | Some pt' ->
                  Prop.require (Bytes.equal pt pt')
                    "len %d (aad %d): roundtrip mismatch" len
                    (Bytes.length aad)
              | None ->
                  Prop.fail "len %d (aad %d): authentic message rejected" len
                    (Bytes.length aad))
            [ Bytes.empty; aad ])
        boundary_lens);
  Prop.check ~name:"aead tamper/aad-swap rejection" ~count:100 gen_material
    (fun (key, nonce, aad, big) ->
      List.iter
        (fun len ->
          let pt = Bytes.sub big 0 len in
          let ct = Aead.seal ~key ~nonce ~aad pt in
          (* flip one bit — in the tag when the ciphertext is empty *)
          let pos = if len = 0 then Bytes.length ct - 1 else 0 in
          let bad = Bytes.copy ct in
          Bytes_util.set_u8 bad pos (Bytes_util.get_u8 bad pos lxor 1);
          Prop.require
            (Aead.open_ ~key ~nonce ~aad bad = None)
            "len %d: tampered ciphertext accepted" len;
          Prop.require
            (Aead.open_ ~key ~nonce ~aad:Bytes.empty ct = None)
            "len %d: AAD stripped yet accepted" len)
        [ 0; 63; 64; 65 ]);
  Prop.check ~name:"seal_into = seal / open_into = open_" ~count:100
    gen_material (fun (key, nonce, aad, big) ->
      List.iter
        (fun len ->
          let pt = Bytes.sub big 0 len in
          let sealed = Aead.seal ~key ~nonce ~aad pt in
          (* seal_into at an offset into a larger buffer must produce
             the exact wrapper bytes *)
          let dst = Bytes.make (7 + len + Aead.tag_len + 4) '\xab' in
          Aead.seal_into ~key ~nonce ~aad ~src:big ~src_off:0 ~len ~dst
            ~dst_off:7 ();
          Prop.require
            (Bytes.equal sealed (Bytes.sub dst 7 (len + Aead.tag_len)))
            "len %d: seal_into differs from seal" len;
          (* open_into from that offset must recover the plaintext *)
          let out = Bytes.make (5 + len) '\x00' in
          Prop.require
            (Aead.open_into ~key ~nonce ~aad ~src:dst ~src_off:7
               ~len:(len + Aead.tag_len) ~dst:out ~dst_off:5 ())
            "len %d: open_into rejected authentic bytes" len;
          Prop.require
            (Bytes.equal pt (Bytes.sub out 5 len))
            "len %d: open_into plaintext differs from open_" len;
          (* in-place seal: plaintext becomes ct||tag in one buffer *)
          let buf = Bytes.create (len + Aead.tag_len) in
          Bytes.blit big 0 buf 0 len;
          Aead.seal_into ~key ~nonce ~aad ~src:buf ~src_off:0 ~len ~dst:buf
            ~dst_off:0 ();
          Prop.require (Bytes.equal sealed buf)
            "len %d: in-place seal_into differs from seal" len;
          (* ... and in-place open restores it *)
          Prop.require
            (Aead.open_into ~key ~nonce ~aad ~src:buf ~src_off:0
               ~len:(len + Aead.tag_len) ~dst:buf ~dst_off:0 ())
            "len %d: in-place open_into rejected" len;
          Prop.require
            (Bytes.equal pt (Bytes.sub buf 0 len))
            "len %d: in-place open_into plaintext mismatch" len)
        boundary_lens);
  (* The AEAD pins its ChaCha20 block counters at 0 (poly key) and 1
     (payload), so a payload long enough would wrap the 32-bit counter
     only after 256 GiB; the wraparound contract is instead pinned
     differentially here at the stream layer the AEAD sits on. *)
  Prop.vector ~name:"aead stream at 32-bit counter wraparound" (fun () ->
      let key = Bytes.init 32 (fun i -> Char.chr (0x80 lor i)) in
      let nonce = Bytes.init 12 (fun i -> Char.chr (i * 3)) in
      let pt = Bytes.init 200 (fun i -> Char.chr (i land 0xff)) in
      let fast = Chacha20.encrypt ~counter:0xffffffff ~key ~nonce pt in
      let oracle = Chacha20_ref.encrypt ~counter:0xffffffff ~key ~nonce pt in
      Prop.check_hex ~what:"wraparound ciphertext"
        (Bytes_util.to_hex oracle) (Bytes_util.to_hex fast));
  Prop.check ~name:"box roundtrip at block boundaries" ~count:50
    (fun rng ->
      let ska, pka = Drbg.keypair ~rng () in
      let skb, pkb = Drbg.keypair ~rng () in
      let aad = Drbg.generate rng 16 in
      let big = Drbg.generate rng 257 in
      (ska, pka, skb, pkb, aad, big))
    (fun (ska, pka, skb, pkb, aad, big) ->
      (* Both DH directions must agree on the precomputed key: this is
         the first consumer of the 51-bit shared-secret path. *)
      let kab = Box.precompute ~secret:ska ~public:pkb in
      let kba = Box.precompute ~secret:skb ~public:pka in
      Prop.check_hex ~what:"precompute symmetry"
        (Bytes_util.to_hex kab) (Bytes_util.to_hex kba);
      List.iteri
        (fun i len ->
          let pt = Bytes.sub big 0 len in
          let nonce = Aead.nonce_of ~domain:0x0b0b ~counter:i in
          List.iter
            (fun aad ->
              let ct = Box.seal ~key:kab ~nonce ~aad pt in
              match Box.open_ ~key:kba ~nonce ~aad ct with
              | Some pt' ->
                  Prop.require (Bytes.equal pt pt')
                    "box len %d: roundtrip mismatch" len
              | None -> Prop.fail "box len %d: authentic message rejected" len)
            [ Bytes.empty; aad ])
        boundary_lens);
  Prop.check ~name:"sealed box (invitations) boundaries" ~count:50
    (fun rng ->
      let sk, pk = Drbg.keypair ~rng () in
      let big = Drbg.generate rng 128 in
      (rng, sk, pk, big))
    (fun (rng, sk, pk, big) ->
      List.iter
        (fun len ->
          let pt = Bytes.sub big 0 len in
          let ct = Box.seal_anonymous ~rng ~recipient_pk:pk pt in
          Prop.require
            (Bytes.length ct = len + Box.anonymous_overhead)
            "sealed box len %d: overhead %d, want %d" len
            (Bytes.length ct - len)
            Box.anonymous_overhead;
          match Box.open_anonymous ~recipient_sk:sk ~recipient_pk:pk ct with
          | Some pt' ->
              Prop.require (Bytes.equal pt pt')
                "sealed box len %d: roundtrip mismatch" len
          | None -> Prop.fail "sealed box len %d: rejected" len)
        [ 0; 1; 63; 64; 65 ]);
  (* Full onion path over a 3-server chain: wrap, peel at each hop,
     seal the reply back up, unwrap at the client. *)
  Prop.check ~name:"onion wrap/peel/reply at boundaries" ~count:25
    (fun rng ->
      let servers = Array.init 3 (fun _ -> Drbg.keypair ~rng ()) in
      let big = Drbg.generate rng 257 in
      (rng, servers, big))
    (fun (rng, servers, big) ->
      let server_pks = Array.to_list (Array.map snd servers) in
      List.iter
        (fun len ->
          let payload = Bytes.sub big 0 len in
          let round = 41 + len in
          let { Onion.onion; secrets } =
            Onion.wrap ~rng ~server_pks ~round payload
          in
          Prop.require
            (Bytes.length onion
            = Onion.request_size ~chain_len:3 ~payload_len:len)
            "onion len %d: request size %d" len (Bytes.length onion);
          (* peel through the chain *)
          let inner = ref onion in
          let layer_secrets = ref [] in
          Array.iteri
            (fun hop (sk, _) ->
              match Onion.peel ~server_sk:sk ~round !inner with
              | Some (next, secret) ->
                  inner := next;
                  layer_secrets := (hop, secret) :: !layer_secrets
              | None -> Prop.fail "onion len %d: hop %d failed to peel" len hop)
            servers;
          Prop.require
            (Bytes.equal !inner payload)
            "onion len %d: innermost payload mismatch" len;
          (* each stored secret must match what peel recovered *)
          List.iter
            (fun (hop, secret) ->
              Prop.require
                (Bytes.equal secret secrets.(hop))
                "onion len %d: hop %d secret mismatch" len hop)
            !layer_secrets;
          (* reply path: last server seals first, then back down the chain *)
          let reply = ref !inner in
          for hop = 2 downto 0 do
            reply := Onion.seal_reply ~secret:secrets.(hop) ~round !reply
          done;
          (match Onion.unwrap_reply ~secrets ~round !reply with
          | Some pt ->
              Prop.require (Bytes.equal pt payload)
                "onion len %d: reply roundtrip mismatch" len
          | None -> Prop.fail "onion len %d: reply rejected" len);
          (* a peel under the wrong round must fail closed *)
          Prop.require
            (Onion.peel ~server_sk:(fst servers.(0)) ~round:(round + 1) onion
            = None)
            "onion len %d: wrong-round peel accepted" len)
        [ 0; 1; 63; 64; 65 ])
