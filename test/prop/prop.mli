(** Mini property-test framework: DRBG-seeded generators, case counters,
    and failure reports that name the reproducing seed.  Used by the
    differential crypto suites under [test/prop/]. *)

open Vuvuzela_crypto

type 'a gen = Drbg.t -> 'a

val master_seed : string
(** ["vuvuzela-prop-1"], overridable via the [PROP_SEED] environment
    variable; every case seed is ["<master>/<test>/<case #>"]. *)

exception Counterexample of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Counterexample} with a formatted message. *)

val require : bool -> ('a, unit, string, unit) format4 -> 'a
(** [require ok fmt ...] fails with the message when [ok] is false. *)

val check_hex : what:string -> string -> string -> unit
(** [check_hex ~what expected actual] compares hex strings. *)

val suite : string -> unit
(** Start a named suite section (affects only the report). *)

val check : name:string -> ?count:int -> 'a gen -> ('a -> unit) -> unit
(** Run the property over [count] (default 1000) generated cases.  Each
    case [i] regenerates from [Drbg.of_string (case_seed ~name i)]. *)

val vector : name:string -> (unit -> unit) -> unit
(** A single deterministic case (RFC vectors, fixed edge inputs). *)

val gen_bytes : int -> bytes gen
val gen_fe_bytes : bytes gen
(** 32 random bytes — a (possibly non-canonical) field-element encoding. *)

val gen_pair : 'a gen -> 'b gen -> ('a * 'b) gen

val exit_summary : unit -> unit
(** Print totals; exit nonzero if any test failed. *)
