(* Mini property-test framework for the differential crypto suites.

   Deliberately tiny and dependency-free: every generated case draws its
   bytes from a ChaCha20-DRBG seeded with "<master>/<test name>/<case #>",
   so a failure report names the exact seed string that reproduces it —
   rerun with PROP_SEED=<master> (or paste the full case seed into a
   one-off Drbg.of_string) and case N regenerates bit-for-bit.  No
   shrinking: differential failures are already minimal enough to debug
   from the printed hex. *)

open Vuvuzela_crypto

type 'a gen = Drbg.t -> 'a

let master_seed =
  match Sys.getenv_opt "PROP_SEED" with
  | Some s when s <> "" -> s
  | _ -> "vuvuzela-prop-1"

let case_seed ~name i = Printf.sprintf "%s/%s/%d" master_seed name i

(* Counters for the final summary. *)
let suites = ref 0
let tests = ref 0
let cases = ref 0
let failures = ref 0

exception Counterexample of string

let fail fmt = Printf.ksprintf (fun s -> raise (Counterexample s)) fmt
let require ok fmt = Printf.ksprintf (fun s -> if not ok then raise (Counterexample s)) fmt

let check_hex ~what expected actual =
  if expected <> actual then
    fail "%s:\n         expected %s\n         got      %s" what expected actual

let suite name =
  incr suites;
  Printf.printf "\n%s\n" name

let report_failure name ~case ~count ~seed msg =
  incr failures;
  Printf.printf "  FAIL %-46s case %d of %d\n" name case count;
  Printf.printf "       reproducing seed: %S\n" seed;
  Printf.printf "       %s\n%!" msg

(* Run [prop] over [count] generated cases; stops a test at its first
   counterexample (later cases of the same test rarely add signal) but
   keeps running the remaining tests so one regression doesn't mask
   another. *)
let check ~name ?(count = 1000) (gen : 'a gen) (prop : 'a -> unit) =
  incr tests;
  let failed = ref false in
  (try
     for i = 0 to count - 1 do
       let seed = case_seed ~name i in
       let rng = Drbg.of_string seed in
       let x = gen rng in
       incr cases;
       try prop x with
       | Counterexample msg ->
           report_failure name ~case:i ~count ~seed msg;
           failed := true;
           raise Exit
       | e ->
           report_failure name ~case:i ~count ~seed
             ("unexpected exception: " ^ Printexc.to_string e);
           failed := true;
           raise Exit
     done
   with Exit -> ());
  if not !failed then Printf.printf "  ok   %-46s %5d cases\n%!" name count

(* A single deterministic case (RFC vectors, fixed edge inputs). *)
let vector ~name (f : unit -> unit) =
  incr tests;
  incr cases;
  try
    f ();
    Printf.printf "  ok   %-46s vector\n%!" name
  with
  | Counterexample msg ->
      report_failure name ~case:0 ~count:1 ~seed:"(none: fixed vector)" msg
  | e ->
      report_failure name ~case:0 ~count:1 ~seed:"(none: fixed vector)"
        ("unexpected exception: " ^ Printexc.to_string e)

(* Generators. *)
let gen_bytes n rng = Drbg.generate rng n
let gen_fe_bytes rng = Drbg.generate rng 32
let gen_pair g1 g2 rng =
  let a = g1 rng in
  let b = g2 rng in
  (a, b)

let exit_summary () =
  Printf.printf
    "\n%d suites, %d tests, %d cases, %d failure%s  (master seed %S)\n"
    !suites !tests !cases !failures
    (if !failures = 1 then "" else "s")
    master_seed;
  if !failures > 0 then exit 1
