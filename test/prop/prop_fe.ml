(* Differential field suites: every Fe25519 (5×51-bit limbs) operation is
   checked against the retained seed implementation Fe25519_ref
   (TweetNaCl 16×16-bit limbs) over ≥1000 seeded cases per op.  Both
   sides unpack the same 32-byte encoding, apply the same op, and must
   pack to identical canonical bytes. *)

open Vuvuzela_crypto

let hex = Bytes_util.to_hex

(* Apply [op_new]/[op_ref] to the same encodings and compare packings. *)
let differential2 ~what op_new op_ref (ba, bb) =
  let o = Fe25519.create () in
  op_new o (Fe25519.unpack ba) (Fe25519.unpack bb);
  let o' = Fe25519_ref.create () in
  op_ref o' (Fe25519_ref.unpack ba) (Fe25519_ref.unpack bb);
  Prop.check_hex
    ~what:(Printf.sprintf "%s(%s, %s)" what (hex ba) (hex bb))
    (hex (Fe25519_ref.pack o'))
    (hex (Fe25519.pack o))

let differential1 ~what op_new op_ref ba =
  let o = Fe25519.create () in
  op_new o (Fe25519.unpack ba);
  let o' = Fe25519_ref.create () in
  op_ref o' (Fe25519_ref.unpack ba);
  Prop.check_hex
    ~what:(Printf.sprintf "%s(%s)" what (hex ba))
    (hex (Fe25519_ref.pack o'))
    (hex (Fe25519.pack o))

let gen2 = Prop.(gen_pair gen_fe_bytes gen_fe_bytes)

let run () =
  Prop.suite "fe25519 (51-bit limbs) vs fe25519_ref (seed, 16-bit limbs)";
  Prop.check ~name:"fe add" gen2
    (differential2 ~what:"add" Fe25519.add Fe25519_ref.add);
  Prop.check ~name:"fe sub" gen2
    (differential2 ~what:"sub" Fe25519.sub Fe25519_ref.sub);
  Prop.check ~name:"fe mul" gen2
    (differential2 ~what:"mul" Fe25519.mul Fe25519_ref.mul);
  Prop.check ~name:"fe square" Prop.gen_fe_bytes
    (differential1 ~what:"square" Fe25519.square Fe25519_ref.square);
  Prop.check ~name:"fe invert" Prop.gen_fe_bytes
    (differential1 ~what:"invert" Fe25519.invert Fe25519_ref.invert);
  Prop.check ~name:"fe pow2523" Prop.gen_fe_bytes
    (differential1 ~what:"pow2523" Fe25519.pow2523 Fe25519_ref.pow2523);
  (* mul by the ladder's small constants must equal the general mul. *)
  Prop.check ~name:"fe mul_small = mul (121665, 9)" Prop.gen_fe_bytes
    (fun ba ->
      List.iter
        (fun c ->
          let k = Bytes.make 32 '\000' in
          Bytes_util.set_u8 k 0 (c land 0xff);
          Bytes_util.set_u8 k 1 ((c lsr 8) land 0xff);
          Bytes_util.set_u8 k 2 ((c lsr 16) land 0xff);
          let o = Fe25519.create () and m = Fe25519.create () in
          Fe25519.mul_small o (Fe25519.unpack ba) c;
          Fe25519.mul m (Fe25519.unpack ba) (Fe25519.unpack k);
          Prop.check_hex
            ~what:(Printf.sprintf "mul_small(%s, %d)" (hex ba) c)
            (hex (Fe25519.pack m))
            (hex (Fe25519.pack o)))
        [ 121665; 9; 1; 0 ]);
  (* to/from bytes: unpack·pack agrees with the oracle and is canonical
     (packing is idempotent even for non-canonical encodings >= p). *)
  Prop.check ~name:"fe pack/unpack canonicality" Prop.gen_fe_bytes (fun ba ->
      let p_new = Fe25519.pack (Fe25519.unpack ba) in
      let p_ref = Fe25519_ref.pack (Fe25519_ref.unpack ba) in
      Prop.check_hex
        ~what:(Printf.sprintf "pack(unpack %s)" (hex ba))
        (hex p_ref) (hex p_new);
      Prop.check_hex
        ~what:(Printf.sprintf "pack idempotent on %s" (hex ba))
        (hex p_new)
        (hex (Fe25519.pack (Fe25519.unpack p_new))));
  (* The lazy-carry path: add/sub results are packed without an explicit
     carry, exercising pack's reduction of unreduced limbs; parity and
     equal must agree with the oracle on those values too. *)
  Prop.check ~name:"fe parity/equal on lazy values" gen2 (fun (ba, bb) ->
      let s = Fe25519.create () in
      Fe25519.add s (Fe25519.unpack ba) (Fe25519.unpack bb);
      let s' = Fe25519_ref.create () in
      Fe25519_ref.add s' (Fe25519_ref.unpack ba) (Fe25519_ref.unpack bb);
      Prop.require
        (Fe25519.parity s = Fe25519_ref.parity s')
        "parity(add %s %s): new %d, ref %d" (hex ba) (hex bb)
        (Fe25519.parity s) (Fe25519_ref.parity s');
      Prop.require
        (Fe25519.equal s (Fe25519.unpack (Fe25519_ref.pack s')))
        "equal disagrees with oracle pack on add(%s, %s)" (hex ba) (hex bb));
  (* Aliased outputs (o == a, o == b, and both) are allowed everywhere;
     the ladder relies on this. *)
  Prop.check ~name:"fe aliasing (o = a, o = b, o = a = b)" gen2
    (fun (ba, bb) ->
      let expect op =
        let o = Fe25519.create () in
        op o (Fe25519.unpack ba) (Fe25519.unpack bb);
        hex (Fe25519.pack o)
      in
      let m = expect Fe25519.mul in
      let x = Fe25519.unpack ba in
      Fe25519.mul x x (Fe25519.unpack bb);
      Prop.check_hex ~what:"mul o=a" m (hex (Fe25519.pack x));
      let y = Fe25519.unpack bb in
      Fe25519.mul y (Fe25519.unpack ba) y;
      Prop.check_hex ~what:"mul o=b" m (hex (Fe25519.pack y));
      let z = Fe25519.unpack ba in
      Fe25519.square z z;
      let s = Fe25519.create () in
      Fe25519.square s (Fe25519.unpack ba);
      Prop.check_hex ~what:"square o=a" (hex (Fe25519.pack s))
        (hex (Fe25519.pack z)))
