(* Differential properties of the scale plane's dead-drop rewrite.

   The sharded store (Deaddrop.Sharded) and the rewritten monolithic
   store must be observationally identical to the retained seed oracle
   (Deaddrop_ref) on every observable the protocol has: per-slot
   resolve results, the (m1, m2, m_more) histogram, and the transcript
   digest over the whole result array — across shard counts, job
   counts, and adversarial access multiplicities (drop ids are drawn
   from a small pool so 1-, 2- and >2-access drops all occur).

   The stable-bloom prefilter's contract is also checked here: an
   element queried right after its insert is always found (the CDN
   registers a subscription and scans in the same call, so a real
   invitation can never be filtered out), and the measured
   false-positive rate stays within 2x the configured target. *)

open Vuvuzela_crypto
module Deaddrop = Vuvuzela.Deaddrop
module Deaddrop_ref = Vuvuzela.Deaddrop_ref
module Stable_bloom = Vuvuzela.Stable_bloom
module Pool = Vuvuzela_parallel.Pool

let pools = Hashtbl.create 4

let pool ~jobs =
  match Hashtbl.find_opt pools jobs with
  | Some p -> p
  | None ->
      let p = Pool.create ~jobs in
      Hashtbl.add pools jobs p;
      p

let shutdown_pools () =
  Hashtbl.iter (fun _ p -> Pool.shutdown p) pools;
  Hashtbl.reset pools

(* A generated round: slots put in order, drop ids drawn from a small
   pool so collisions (the protocol's whole point) are common, plus a
   shard count and job count for the store under test. *)
type case = {
  shards : int;
  jobs : int;
  n_slots : int;
  puts : (int * bytes * bytes) array;  (* slot, drop_id, sealed *)
}

let gen_case rng =
  let shards = [| 1; 4; 16 |].(Drbg.uniform ~rng 3) in
  let jobs = [| 1; 4 |].(Drbg.uniform ~rng 2) in
  let n_slots = Drbg.uniform ~rng 161 in
  let n_ids = 1 + Drbg.uniform ~rng 48 in
  let ids = Array.init n_ids (fun _ -> Drbg.bytes ~rng 16) in
  let puts =
    Array.init n_slots (fun slot ->
        (slot, ids.(Drbg.uniform ~rng n_ids), Drbg.bytes ~rng 32))
  in
  { shards; jobs; n_slots; puts }

let digest_of results =
  Bytes_util.to_hex (Sha256.digest (Bytes_util.concat (Array.to_list results)))

let oracle_run c =
  let d = Deaddrop_ref.create () in
  Array.iter
    (fun (slot, drop_id, sealed) -> Deaddrop_ref.put d ~slot ~drop_id ~sealed)
    c.puts;
  let results = Deaddrop_ref.resolve d ~n_slots:c.n_slots in
  (results, Deaddrop_ref.histogram d)

let check_results ~what c expected actual =
  Prop.require
    (Array.length expected = Array.length actual)
    "%s: shards=%d jobs=%d: result count %d <> oracle %d" what c.shards c.jobs
    (Array.length actual) (Array.length expected);
  Array.iteri
    (fun i e ->
      if not (Bytes.equal e actual.(i)) then
        Prop.fail "%s: shards=%d jobs=%d slot %d diverged from oracle" what
          c.shards c.jobs i)
    expected;
  Prop.check_hex ~what:(what ^ " transcript digest") (digest_of expected)
    (digest_of actual)

let check_histogram ~what c (e : Deaddrop_ref.histogram)
    (a : Deaddrop.histogram) =
  Prop.require
    (e.m1 = a.Deaddrop.m1 && e.m2 = a.Deaddrop.m2
    && e.m_more = a.Deaddrop.m_more)
    "%s: shards=%d jobs=%d histogram (%d,%d,%d) <> oracle (%d,%d,%d)" what
    c.shards c.jobs a.Deaddrop.m1 a.Deaddrop.m2 a.Deaddrop.m_more e.m1 e.m2
    e.m_more

let run () =
  Prop.suite "dead-drop store (sharded vs seed oracle)";
  Prop.check ~name:"sharded resolve/histogram/digest = oracle" ~count:500
    gen_case (fun c ->
      let expected, ehist = oracle_run c in
      let d = Deaddrop.Sharded.create ~shards:c.shards () in
      Array.iter
        (fun (slot, drop_id, sealed) ->
          Deaddrop.Sharded.put d ~slot ~drop_id ~sealed)
        c.puts;
      let pool = if c.jobs > 1 then Some (pool ~jobs:c.jobs) else None in
      let actual = Deaddrop.Sharded.resolve ?pool d ~n_slots:c.n_slots in
      check_results ~what:"sharded" c expected actual;
      check_histogram ~what:"sharded" c ehist (Deaddrop.Sharded.histogram d);
      Prop.require
        (Deaddrop.Sharded.total_accesses d = Array.length c.puts)
        "sharded total_accesses %d <> %d"
        (Deaddrop.Sharded.total_accesses d)
        (Array.length c.puts));
  Prop.check ~name:"monolithic resolve/histogram = oracle" ~count:150 gen_case
    (fun c ->
      let expected, ehist = oracle_run c in
      let d = Deaddrop.create () in
      Array.iter
        (fun (slot, drop_id, sealed) -> Deaddrop.put d ~slot ~drop_id ~sealed)
        c.puts;
      let actual = Deaddrop.resolve d ~n_slots:c.n_slots in
      check_results ~what:"monolithic" c expected actual;
      check_histogram ~what:"monolithic" c ehist (Deaddrop.histogram d));
  Prop.check ~name:"resolve results are independent buffers" ~count:60 gen_case
    (fun c ->
      (* The seed store's shared-empty_result bug, fixed: scribbling
         over one lone slot's result must leave every other lone slot
         all-zero. *)
      if c.n_slots > 0 then begin
        let d = Deaddrop.Sharded.create ~shards:c.shards () in
        Array.iter
          (fun (slot, drop_id, sealed) ->
            Deaddrop.Sharded.put d ~slot ~drop_id ~sealed)
          c.puts;
        let results = Deaddrop.Sharded.resolve d ~n_slots:c.n_slots in
        let zero = Bytes.make (Bytes.length Deaddrop.empty_result) '\000' in
        let lone = ref [] in
        Array.iteri
          (fun i r -> if Bytes.equal r zero then lone := i :: !lone)
          results;
        match !lone with
        | [] -> ()
        | first :: rest ->
            Bytes.fill results.(first) 0 (Bytes.length results.(first)) 'X';
            List.iter
              (fun i ->
                Prop.require
                  (Bytes.equal results.(i) zero)
                  "mutating lone slot %d corrupted lone slot %d" first i)
              rest;
            Prop.require
              (Bytes.equal Deaddrop.empty_result zero)
              "mutating a returned result corrupted Deaddrop.empty_result"
      end);

  Prop.suite "stable bloom prefilter";
  Prop.check ~name:"insert-then-query never misses" ~count:200
    (fun rng ->
      let capacity = 8 + Drbg.uniform ~rng 256 in
      let fp = 0.005 +. (Drbg.float_unit ~rng () *. 0.05) in
      let n = 1 + Drbg.uniform ~rng (2 * capacity) in
      let elements = Array.init n (fun _ -> Drbg.bytes ~rng 32) in
      (capacity, fp, elements))
    (fun (capacity, fp, elements) ->
      (* The CDN's access pattern: register, then scan in the same
         call.  Soundness must hold even past capacity, where decay is
         actively evicting older elements. *)
      let f = Stable_bloom.create ~capacity ~fp () in
      Array.iteri
        (fun i e ->
          Stable_bloom.insert f e;
          Prop.require (Stable_bloom.query f e)
            "element %d/%d lost right after insert (capacity=%d fp=%g)" i
            (Array.length elements) capacity fp)
        elements);
  Prop.vector ~name:"measured FP rate within 2x configured" (fun () ->
      let capacity = 2000 and fp = 0.02 in
      let f = Stable_bloom.create ~seed:"prop-fp" ~decay:0 ~capacity ~fp () in
      let rng = Drbg.of_string "prop-deaddrop-fp-elements" in
      for _ = 1 to capacity do
        Stable_bloom.insert f (Drbg.bytes ~rng 32)
      done;
      (* Fresh 33-byte probes can never collide with the 32-byte
         inserts, so every hit below is a false positive. *)
      let probes = 20_000 in
      let hits = ref 0 in
      for _ = 1 to probes do
        if Stable_bloom.query f (Drbg.bytes ~rng 33) then incr hits
      done;
      let measured = float_of_int !hits /. float_of_int probes in
      Prop.require
        (measured <= 2. *. fp)
        "measured FP rate %.4f exceeds 2x configured %.3f" measured fp;
      Prop.require (measured > 0.) "filter at capacity shows no FPs at all");
  shutdown_pools ()
