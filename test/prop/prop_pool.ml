(* Properties of the chunked domain pool: every combinator must be
   observationally equal to its sequential Array counterpart for pure
   functions — at any job count, any array size, including the empty
   array and sizes that don't divide evenly into chunks.  This is the
   determinism contract the relay's peel stage (and the transcript
   pins) stand on. *)

open Vuvuzela_crypto
module Pool = Vuvuzela_parallel.Pool

(* Domains are expensive to spawn on every case; reuse one pool per job
   count across the whole suite. *)
let pools = Hashtbl.create 4

let pool ~jobs =
  match Hashtbl.find_opt pools jobs with
  | Some p -> p
  | None ->
      let p = Pool.create ~jobs in
      Hashtbl.add pools jobs p;
      p

let shutdown_pools () =
  Hashtbl.iter (fun _ p -> Pool.shutdown p) pools;
  Hashtbl.reset pools

(* A generated case: a job count, and an int array whose size sweeps
   the awkward range around chunk boundaries. *)
let gen_case rng =
  let jobs = 1 + Drbg.uniform ~rng 4 in
  let n = Drbg.uniform ~rng 97 in
  let arr = Array.init n (fun _ -> Drbg.uniform ~rng 1_000_000) in
  (jobs, arr)

(* Pure, index-sensitive, collision-resistant enough to catch a result
   written to the wrong slot or computed from the wrong input. *)
let f i x = (x * 2_654_435_761) lxor (i * 40_503) lxor (x lsr 7)

let run () =
  Prop.suite "parallel pool (chunked)";
  Prop.check ~name:"mapi_array = Array.mapi" ~count:60 gen_case
    (fun (jobs, arr) ->
      let expected = Array.mapi f arr in
      let got = Pool.mapi_array (pool ~jobs) f arr in
      Prop.require (got = expected) "jobs=%d n=%d: mapi_array diverged" jobs
        (Array.length arr));
  Prop.check ~name:"map_array = Array.map" ~count:60 gen_case
    (fun (jobs, arr) ->
      let g x = f 0 x in
      let expected = Array.map g arr in
      let got = Pool.map_array (pool ~jobs) g arr in
      Prop.require (got = expected) "jobs=%d n=%d: map_array diverged" jobs
        (Array.length arr));
  Prop.check ~name:"per-item strategy = chunked strategy" ~count:40 gen_case
    (fun (jobs, arr) ->
      let chunked = Pool.mapi_array (pool ~jobs) f arr in
      let per_item = Pool.mapi_array_per_item (pool ~jobs) f arr in
      Prop.require (chunked = per_item)
        "jobs=%d n=%d: strategies disagree" jobs (Array.length arr));
  Prop.check ~name:"iter_array visits every element once" ~count:40 gen_case
    (fun (jobs, arr) ->
      let n = Array.length arr in
      (* Tag each element with its index so the visit counter does not
         depend on which domain runs which chunk. *)
      let tagged = Array.mapi (fun i x -> (i, x)) arr in
      let seen = Array.make n 0 in
      (* Disjoint chunks touch disjoint slots, so unsynchronized writes
         are safe here. *)
      Pool.iter_array (pool ~jobs) (fun (i, _) -> seen.(i) <- seen.(i) + 1)
        tagged;
      Prop.require
        (Array.for_all (fun c -> c = 1) seen)
        "jobs=%d n=%d: some element visited != once" jobs n);
  Prop.check ~name:"exceptions reach the caller" ~count:20 gen_case
    (fun (jobs, arr) ->
      let n = Array.length arr in
      if n > 0 then begin
        let bad = n / 2 in
        match
          Pool.mapi_array (pool ~jobs)
            (fun i x -> if i = bad then failwith "boom" else f i x)
            arr
        with
        | _ -> Prop.fail "jobs=%d n=%d: exception swallowed" jobs n
        | exception Failure _ -> ()
      end);
  Prop.vector ~name:"empty array at every job count" (fun () ->
      List.iter
        (fun jobs ->
          Prop.require
            (Pool.mapi_array (pool ~jobs) f [||] = [||])
            "jobs=%d: empty mapi_array not empty" jobs;
          Pool.iter_array (pool ~jobs) (fun _ -> assert false) [||])
        [ 1; 2; 3; 4 ]);
  shutdown_pools ()
