(* Ed25519 over the 51-bit field: RFC 8032 §7.1 vectors, algebraic
   re-derivation of the curve constants (which ed25519.ml now states as
   canonical byte encodings), and rejection tests for non-canonical s
   and wrong-length inputs. *)

open Vuvuzela_crypto

let hex = Bytes_util.to_hex
let of_hex = Bytes_util.of_hex

let rfc8032_vector ~name ~sk ~pk ~msg ~signature =
  Prop.vector ~name (fun () ->
      let sk = of_hex sk and msg = of_hex msg in
      Prop.check_hex ~what:"public key" pk (hex (Ed25519.public_key sk));
      let s = Ed25519.sign ~secret:sk msg in
      Prop.check_hex ~what:"signature" signature (hex s);
      Prop.require
        (Ed25519.verify ~public:(of_hex pk) ~signature:s msg)
        "signature does not verify")

(* L, little-endian. *)
let order_l =
  [|
    0xed; 0xd3; 0xf5; 0x5c; 0x1a; 0x63; 0x12; 0x58; 0xd6; 0x9c; 0xf7; 0xa2;
    0xde; 0xf9; 0xde; 0x14; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0;
    0x10;
  |]

(* forged = signature with L added to s (mod 2^256); returns None when
   the addition overflows 256 bits (no valid forgery to test). *)
let add_l_to_s signature =
  let forged = Bytes.copy signature in
  let carry = ref 0 in
  for i = 0 to 31 do
    let v = Bytes_util.get_u8 forged (32 + i) + order_l.(i) + !carry in
    Bytes_util.set_u8 forged (32 + i) (v land 0xff);
    carry := v lsr 8
  done;
  if !carry = 0 then Some forged else None

let run () =
  Prop.suite "ed25519 (rfc 8032 vectors + rejections)";
  rfc8032_vector ~name:"rfc8032 test 1 (empty message)"
    ~sk:"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"
    ~pk:"d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
    ~msg:""
    ~signature:
      "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b";
  rfc8032_vector ~name:"rfc8032 test 2 (one byte)"
    ~sk:"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"
    ~pk:"3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
    ~msg:"72"
    ~signature:
      "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00";
  rfc8032_vector ~name:"rfc8032 test 3 (two bytes)"
    ~sk:"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7"
    ~pk:"fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
    ~msg:"af82"
    ~signature:
      "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a";
  rfc8032_vector ~name:"rfc8032 test SHA(abc)"
    ~sk:"833fe62409237b9d62ec77587520911e9a759cec1d19755b7da901b96dca3d42"
    ~pk:"ec172b93ad5e563bf4932c70e1245034c35467ef2efd4d64ebf819683467e2bf"
    ~msg:
      "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
    ~signature:
      "dc2a4459e7369633a52b1bf277839a00201009a3efbf3ecb69bea2186c26b58909351fc9ac90b3ecfdfbc7c66431e0303dca179c138ac17ad9bef1177331a704";
  (* The curve constants stated as byte encodings in ed25519.ml, checked
     algebraically over Fe25519: d = -121665/121666, 2d = d + d,
     I^2 = -1, and the base point satisfies the curve equation
     -x^2 + y^2 = 1 + d x^2 y^2. *)
  Prop.vector ~name:"curve constants re-derived" (fun () ->
      let open Fe25519 in
      let d =
        unpack
          (of_hex
             "a3785913ca4deb75abd841414d0a700098e879777940c78c73fe6f2bee6c0352")
      in
      let i_const =
        unpack
          (of_hex
             "b0a00e4a271beec478e42fad0618432fa7d7fb3d99004d2b0bdfc14f8024832b")
      in
      let bx =
        unpack
          (of_hex
             "1ad5258f602d56c9b2a7259560c72c695cdcd6fd31e2a4c0fe536ecdd3366921")
      in
      let by =
        unpack
          (of_hex
             "5866666666666666666666666666666666666666666666666666666666666666")
      in
      (* d * 121666 + 121665 = 0 *)
      let t = create () in
      mul_small t d 121666;
      let c121665 = create () in
      c121665.(0) <- 121665;
      add t t c121665;
      Prop.require (equal t (zero ())) "d <> -121665/121666";
      (* 2d = d + d *)
      let d2 =
        unpack
          (of_hex
             "59f1b226949bd6eb56b183829a14e00030d1f3eef2808e19e7fcdf56dcd90624")
      in
      let dd = create () in
      add dd d d;
      Prop.require (equal dd d2) "2d constant <> d + d";
      (* I^2 = -1 *)
      let ii = create () in
      square ii i_const;
      let minus_one = create () in
      sub minus_one (zero ()) (one ());
      Prop.require (equal ii minus_one) "I^2 <> -1";
      (* curve equation at the base point *)
      let x2 = create () and y2 = create () in
      square x2 bx;
      square y2 by;
      let lhs = create () in
      sub lhs y2 x2;
      let rhs = create () and xy2 = create () in
      mul xy2 x2 y2;
      mul rhs d xy2;
      add rhs rhs (one ());
      Prop.require (equal lhs rhs) "base point not on the curve");
  (* Sign/verify roundtrip over generated seeds and messages. *)
  Prop.check ~name:"sign/verify roundtrip" ~count:50
    Prop.(gen_pair (gen_bytes 32) (gen_bytes 100))
    (fun (seed, msg) ->
      let pk = Ed25519.public_key seed in
      let signature = Ed25519.sign ~secret:seed msg in
      Prop.require
        (Ed25519.verify ~public:pk ~signature msg)
        "fresh signature rejected";
      let other = Bytes.cat msg (Bytes.of_string "x") in
      Prop.require
        (not (Ed25519.verify ~public:pk ~signature other))
        "signature verified for a different message");
  (* Non-canonical s: s + L (same group element, different encoding) and
     s = L itself must both be rejected. *)
  Prop.check ~name:"non-canonical s rejected" ~count:50
    Prop.(gen_pair (gen_bytes 32) (gen_bytes 64))
    (fun (seed, msg) ->
      let pk = Ed25519.public_key seed in
      let signature = Ed25519.sign ~secret:seed msg in
      (match add_l_to_s signature with
      | Some forged ->
          Prop.require
            (not (Ed25519.verify ~public:pk ~signature:forged msg))
            "s + L accepted (malleable encoding)"
      | None -> ());
      let s_is_l = Bytes.copy signature in
      for i = 0 to 31 do
        Bytes_util.set_u8 s_is_l (32 + i) order_l.(i)
      done;
      Prop.require
        (not (Ed25519.verify ~public:pk ~signature:s_is_l msg))
        "s = L accepted");
  (* Wrong-length signatures and keys return false, never raise. *)
  Prop.check ~name:"wrong-length signature/key rejected" ~count:50
    Prop.(gen_pair (gen_bytes 32) (gen_bytes 32))
    (fun (seed, msg) ->
      let pk = Ed25519.public_key seed in
      let signature = Ed25519.sign ~secret:seed msg in
      List.iter
        (fun n ->
          Prop.require
            (not (Ed25519.verify ~public:pk ~signature:(Bytes.make n 'x') msg))
            "length-%d signature accepted" n)
        [ 0; 1; 32; 63; 65; 128 ];
      List.iter
        (fun n ->
          Prop.require
            (not (Ed25519.verify ~public:(Bytes.make n 'k') ~signature msg))
            "length-%d public key accepted" n)
        [ 0; 31; 33 ])
