(* Infrastructure tests: the RPC wire protocol, the §5.5 CDN, and the
   §9 address book. *)

open Vuvuzela_crypto
open Vuvuzela_dp
open Vuvuzela

(* ------------------------------------------------------------------ *)
(* Rpc                                                                 *)
(* ------------------------------------------------------------------ *)

let roundtrip msg =
  match Rpc.decode (Rpc.encode msg) with
  | Ok m ->
      if not (Rpc.equal_message msg m) then Alcotest.fail "rpc mismatch"
  | Error e -> Alcotest.fail e

let test_rpc_roundtrips () =
  let rng = Drbg.of_string "rpc" in
  let batch n len = Array.init n (fun _ -> Drbg.generate rng len) in
  roundtrip (Rpc.Round_announce { round = 42; deadline_ms = 10_000 });
  roundtrip (Rpc.Dial_announce { dial_round = 7; m = 4 });
  roundtrip (Rpc.Conv_batch { round = 3; onions = batch 5 416 });
  roundtrip (Rpc.Conv_batch { round = 3; onions = [||] });
  roundtrip (Rpc.Conv_results { round = 3; replies = batch 5 304 });
  roundtrip (Rpc.Dial_batch { round = 1; m = 2; onions = batch 3 226 });
  roundtrip (Rpc.Dial_results { round = 1; replies = batch 3 49 });
  roundtrip (Rpc.Fetch_drop { dial_round = 9; index = 1 });
  roundtrip
    (Rpc.Drop_contents
       { dial_round = 9; index = 1; invitations = [ Drbg.generate rng 80 ] });
  roundtrip (Rpc.Drop_contents { dial_round = 9; index = 0; invitations = [] });
  roundtrip
    (Rpc.Status
       { round = 12; server = 1; stage = "conv-batch"; detail = "ragged" });
  roundtrip (Rpc.Status { round = 0; server = 0; stage = ""; detail = "" });
  roundtrip
    (Rpc.Trace_ctx
       {
         ctx =
           Vuvuzela_telemetry.Trace.encode_context
             { Vuvuzela_telemetry.Trace.trace = 77; origin = 1; span = 3 };
       })

let test_rpc_rejections () =
  let good = Rpc.encode (Rpc.Round_announce { round = 1; deadline_ms = 1 }) in
  (* Bad magic. *)
  let bad = Bytes.copy good in
  Bytes.set bad 0 'X';
  (match Rpc.decode bad with Error _ -> () | Ok _ -> Alcotest.fail "bad magic");
  (* Bad version. *)
  let bad = Bytes.copy good in
  Bytes.set bad 4 '\x09';
  (match Rpc.decode bad with Error _ -> () | Ok _ -> Alcotest.fail "bad version");
  (* Unknown tag. *)
  let bad = Bytes.copy good in
  Bytes.set bad 5 '\xee';
  (match Rpc.decode bad with Error _ -> () | Ok _ -> Alcotest.fail "bad tag");
  (* Truncation anywhere must fail cleanly. *)
  for cut = 0 to Bytes.length good - 1 do
    match Rpc.decode (Bytes.sub good 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated at %d accepted" cut
  done;
  (* Trailing garbage rejected. *)
  (match Rpc.decode (Bytes.cat good (Bytes.make 1 'z')) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted");
  (* Ragged batch rejected at encode time. *)
  Alcotest.(check bool) "ragged batch" true
    (try
       ignore
         (Rpc.encode
            (Rpc.Conv_batch
               { round = 1; onions = [| Bytes.make 3 'a'; Bytes.make 4 'b' |] }));
       false
     with Vuvuzela_mixnet.Wire.Error _ -> true)

let test_rpc_fuzz () =
  (* Random byte strings never crash the decoder. *)
  let rng = Drbg.of_string "rpc-fuzz" in
  for _ = 1 to 500 do
    let len = Drbg.uniform ~rng 64 in
    match Rpc.decode (Drbg.generate rng len) with
    | Ok _ | Error _ -> ()
  done

(* The trace-context control frame is tolerated-if-absent and
   ignored-if-malformed: old-style streams (no Trace_ctx frame) parse
   exactly as before, a wrong-sized or bit-flipped context decodes to
   [None] at the [Trace.decode_context] layer, and an absurdly large
   one is rejected at the frame layer with a clean [Error] — no input
   reachable from the wire may raise, because a raise would take the
   daemon's round down with it. *)
let test_trace_ctx_wire () =
  let module Trace = Vuvuzela_telemetry.Trace in
  let ctx = { Trace.trace = 0x12345678; origin = 2; span = 41 } in
  let enc = Trace.encode_context ctx in
  Alcotest.(check int) "context length" Trace.context_len (Bytes.length enc);
  (match Trace.decode_context enc with
  | Some c -> Alcotest.(check bool) "context roundtrip" true (c = ctx)
  | None -> Alcotest.fail "valid context failed to decode");
  (* Wrong-sized payloads survive the frame layer; the context layer
     rejects them totally. *)
  List.iter
    (fun len ->
      let bad = Bytes.make len '\x41' in
      match Rpc.decode (Rpc.encode (Rpc.Trace_ctx { ctx = bad })) with
      | Ok (Rpc.Trace_ctx { ctx }) ->
          if len <> Trace.context_len then
            Alcotest.(check bool)
              (Printf.sprintf "%d-byte context decodes to None" len)
              true
              (Trace.decode_context ctx = None)
      | Ok _ -> Alcotest.fail "trace ctx decoded to another message"
      | Error e -> Alcotest.failf "%d-byte context rejected at frame: %s" len e)
    [ 0; 1; Trace.context_len - 1; Trace.context_len; Trace.context_len + 1; 64 ];
  (* Negative ids and out-of-range origins are poisoned, not fatal. *)
  Alcotest.(check bool) "all-ones context decodes to None" true
    (Trace.decode_context (Bytes.make Trace.context_len '\xff') = None);
  (* The frame-layer cap on absurd contexts fails cleanly (and the
     daemon answers an undecodable frame with a round-0 status the
     round-filtered coordinator ignores). *)
  (match Rpc.decode (Rpc.encode (Rpc.Trace_ctx { ctx = Bytes.make 300 'z' })) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "absurd context accepted");
  (* Seeded fuzz: random payloads and random bit flips of a valid
     encoding never raise anywhere in the stack. *)
  let rng = Drbg.of_string "trace-ctx-fuzz" in
  for _ = 1 to 500 do
    let len = Drbg.uniform ~rng 48 in
    let blob = Drbg.generate rng len in
    (match Rpc.decode (Rpc.encode (Rpc.Trace_ctx { ctx = blob })) with
    | Ok (Rpc.Trace_ctx { ctx }) ->
        ignore (Trace.decode_context ctx : Trace.context option)
    | Ok _ -> Alcotest.fail "trace ctx decoded to another message"
    | Error _ -> ());
    let flipped = Bytes.copy enc in
    let i = Drbg.uniform ~rng Trace.context_len in
    Bytes.set flipped i
      (Char.chr (Char.code (Bytes.get flipped i) lxor (1 lsl Drbg.uniform ~rng 8)));
    ignore (Trace.decode_context flipped : Trace.context option)
  done

let test_rpc_batch_bytes () =
  let onions = Array.init 7 (fun _ -> Bytes.make 416 'x') in
  let encoded = Rpc.encode (Rpc.Conv_batch { round = 1; onions }) in
  Alcotest.(check int) "conv_batch_bytes exact"
    (Bytes.length encoded)
    (Rpc.conv_batch_bytes ~count:7 ~item_len:416);
  let encoded = Rpc.encode (Rpc.Dial_batch { round = 1; m = 4; onions }) in
  Alcotest.(check int) "dial_batch_bytes exact"
    (Bytes.length encoded)
    (Rpc.dial_batch_bytes ~count:7 ~item_len:416)

let test_rpc_status_pp () =
  let st = { Rpc.round = 3; server = 1; stage = "conv-batch"; detail = "x" } in
  Alcotest.(check string)
    "status formats" "round 3: server 1 [conv-batch]: x"
    (Format.asprintf "%a" Rpc.pp_status st)

(* ------------------------------------------------------------------ *)
(* CDN                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cdn_caching () =
  let origin_calls = ref 0 in
  let fetch ~dial_round ~index =
    incr origin_calls;
    [ Bytes.of_string (Printf.sprintf "drop-%d-%d" dial_round index) ]
  in
  let cdn = Cdn.create ~edges:1 ~fetch () in
  let pk = Bytes.make 32 'a' in
  (* 50 clients on one edge fetch the same drop: origin hit once. *)
  for _ = 1 to 50 do
    match Cdn.fetch cdn ~client_pk:pk ~dial_round:1 ~index:0 with
    | [ b ] -> Alcotest.(check string) "content" "drop-1-0" (Bytes.to_string b)
    | _ -> Alcotest.fail "wrong contents"
  done;
  Alcotest.(check int) "origin touched once" 1 !origin_calls;
  let s = Cdn.stats cdn in
  Alcotest.(check int) "49 hits" 49 s.Cdn.edge_hits;
  Alcotest.(check int) "1 miss" 1 s.Cdn.edge_misses

let test_cdn_spread_and_eviction () =
  let fetch ~dial_round ~index =
    [ Bytes.of_string (Printf.sprintf "d%d.%d" dial_round index) ]
  in
  let cdn = Cdn.create ~edges:4 ~history:1 ~fetch () in
  let rng = Drbg.of_string "cdn" in
  (* Many clients across edges. *)
  for _ = 1 to 100 do
    ignore (Cdn.fetch cdn ~client_pk:(Drbg.generate rng 32) ~dial_round:1 ~index:0)
  done;
  let s = Cdn.stats cdn in
  (* At most one miss per edge. *)
  Alcotest.(check bool) "misses bounded by edges" true (s.Cdn.edge_misses <= 4);
  (* Advance far: old round evicted, returns []. *)
  ignore (Cdn.fetch cdn ~client_pk:(Drbg.generate rng 32) ~dial_round:5 ~index:0);
  Alcotest.(check (list string)) "evicted round empty" []
    (List.map Bytes.to_string
       (Cdn.fetch cdn ~client_pk:(Drbg.generate rng 32) ~dial_round:1 ~index:0))

let test_cdn_against_live_chain () =
  (* The CDN fronts a real chain's invitation store: clients get exactly
     what a direct fetch returns, while the origin serves each edge
     once. *)
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "cdn-live"
        |> with_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_noise_mode Noise.Deterministic)
  in
  let alice = Network.connect ~seed:"alice" net in
  let bob = Network.connect ~seed:"bob" net in
  Client.dial alice ~callee_pk:(Client.public_key bob);
  ignore (Network.run ~kind:Round.Dialing net);
  let chain = Network.chain net in
  let cdn =
    Cdn.create ~edges:2
      ~fetch:(fun ~dial_round:_ ~index -> Chain.fetch_invitations chain ~index)
      ()
  in
  let direct = Chain.fetch_invitations chain ~index:0 in
  let via_cdn =
    Cdn.fetch cdn ~client_pk:(Client.public_key bob) ~dial_round:1 ~index:0
  in
  Alcotest.(check int) "same count" (List.length direct) (List.length via_cdn);
  Alcotest.(check bool) "same bytes" true
    (List.for_all2 Bytes.equal direct via_cdn);
  (* Bob can scan the CDN copy. *)
  Alcotest.(check int) "bob finds his call" 1
    (List.length (Dialing.scan ~identity:(Client.identity bob) via_cdn))

(* ------------------------------------------------------------------ *)
(* Address book                                                        *)
(* ------------------------------------------------------------------ *)

let mk_contact ?signing name seed =
  let id = Types.identity_of_seed (Bytes.of_string seed) in
  {
    Address_book.name;
    conversation_pk = id.Types.public;
    signing_pk = signing;
  }

let test_address_book_basics () =
  let book = Address_book.create () in
  Address_book.add book (mk_contact "alice" "ab-alice");
  Address_book.add book (mk_contact "bob" "ab-bob");
  Alcotest.(check int) "two contacts" 2 (Address_book.size book);
  (match Address_book.find book ~name:"alice" with
  | Some c -> Alcotest.(check string) "found" "alice" c.Address_book.name
  | None -> Alcotest.fail "alice missing");
  let alice_pk =
    (Option.get (Address_book.find book ~name:"alice")).Address_book.conversation_pk
  in
  (match Address_book.find_by_key book ~conversation_pk:alice_pk with
  | Some c -> Alcotest.(check string) "reverse lookup" "alice" c.Address_book.name
  | None -> Alcotest.fail "reverse lookup failed");
  Address_book.remove book ~name:"alice";
  Alcotest.(check int) "one left" 1 (Address_book.size book);
  Alcotest.(check bool) "reverse entry gone" true
    (Address_book.find_by_key book ~conversation_pk:alice_pk = None)

let test_address_book_serialization () =
  let book = Address_book.create () in
  let _, spk = Ed25519.keypair ~rng:(Drbg.of_string "ab-signer") () in
  Address_book.add book (mk_contact ~signing:spk "carol" "ab-carol");
  Address_book.add book (mk_contact "dave" "ab-dave");
  match Address_book.deserialize (Address_book.serialize book) with
  | Ok book' ->
      Alcotest.(check int) "size preserved" 2 (Address_book.size book');
      let c = Option.get (Address_book.find book' ~name:"carol") in
      Alcotest.(check bool) "signing key preserved" true
        (c.Address_book.signing_pk = Some spk);
      Alcotest.(check bool) "trusts carol's signer" true
        (Address_book.trusts book' spk)
  | Error e -> Alcotest.fail e

let test_address_book_vetting () =
  let book = Address_book.create () in
  let carol_sk, carol_spk = Ed25519.keypair ~rng:(Drbg.of_string "vet-carol") () in
  let mallory_sk, _ = Ed25519.keypair ~rng:(Drbg.of_string "vet-mallory") () in
  let carol_id = Types.identity_of_seed (Bytes.of_string "vet-carol-id") in
  Address_book.add book
    {
      Address_book.name = "carol";
      conversation_pk = carol_id.Types.public;
      signing_pk = Some carol_spk;
    };
  (* Genuine call from carol. *)
  let cert =
    Certificate.self_signed ~signing_sk:carol_sk
      ~conversation_pk:carol_id.Types.public ~name:"carol" ~expires:10
  in
  (match Address_book.vet book ~now:1 ~caller_pk:carol_id.Types.public cert with
  | Address_book.Known c -> Alcotest.(check string) "vetted" "carol" c.Address_book.name
  | _ -> Alcotest.fail "genuine call rejected");
  (* Unknown signer. *)
  let stranger =
    Certificate.self_signed ~signing_sk:mallory_sk
      ~conversation_pk:carol_id.Types.public ~name:"carol" ~expires:10
  in
  (match Address_book.vet book ~now:1 ~caller_pk:carol_id.Types.public stranger with
  | Address_book.Unknown -> ()
  | _ -> Alcotest.fail "unknown signer not flagged");
  (* Carol's key signing a cert for a DIFFERENT conversation key than
     the actual caller: invalid. *)
  let other = Types.identity_of_seed (Bytes.of_string "vet-other") in
  let misbound =
    Certificate.self_signed ~signing_sk:carol_sk
      ~conversation_pk:other.Types.public ~name:"carol" ~expires:10
  in
  (match Address_book.vet book ~now:1 ~caller_pk:carol_id.Types.public misbound with
  | Address_book.Invalid _ -> ()
  | _ -> Alcotest.fail "subject mismatch not flagged");
  (* Expired. *)
  match Address_book.vet book ~now:99 ~caller_pk:carol_id.Types.public cert with
  | Address_book.Invalid (Certificate.Expired _) -> ()
  | _ -> Alcotest.fail "expiry not flagged"

let test_address_book_rename () =
  let book = Address_book.create () in
  Address_book.add book (mk_contact "al" "ab-rename");
  Address_book.add book (mk_contact "albert" "ab-rename");
  (* Same conversation key under a new name: old reverse entry must
     point at the newest record; size counts names. *)
  Alcotest.(check int) "two names" 2 (Address_book.size book)

(* Hand-assemble a [Conv_batch] frame whose batch header lies about its
   contents, bypassing the encoder's own checks. *)
let raw_conv_batch_frame ~count ~item_len ~body_len =
  let module Wire = Vuvuzela_mixnet.Wire in
  Wire.encode (fun w ->
      Wire.Writer.u32 w 0x56555655 (* magic *);
      Wire.Writer.u8 w 1 (* version *);
      Wire.Writer.u8 w 3 (* Conv_batch *);
      Wire.Writer.u64 w 1 (* round *);
      Wire.Writer.u32 w count;
      Wire.Writer.u32 w item_len;
      Wire.Writer.raw w (Bytes.make body_len 'x'))

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"rpc fuzz never crashes" ~count:200
      (string_of_size (Gen.int_bound 100))
      (fun s ->
        match Rpc.decode (Bytes.of_string s) with Ok _ | Error _ -> true);
    Test.make ~name:"rpc read_batch rejects short or long bodies" ~count:100
      (triple (int_range 1 50) (int_range 1 64) (int_range 1 32))
      (fun (count, item_len, delta) ->
        (* The header promises count*item_len bytes; a body that is
           [delta] bytes short or long must be rejected, never
           resynchronized around. *)
        let expect = count * item_len in
        Result.is_error
          (Rpc.decode
             (raw_conv_batch_frame ~count ~item_len
                ~body_len:(max 0 (expect - delta))))
        && Result.is_error
             (Rpc.decode
                (raw_conv_batch_frame ~count ~item_len
                   ~body_len:(expect + delta))));
    Test.make ~name:"rpc read_batch rejects absurd counts" ~count:50
      (int_range 0 1_000_000)
      (fun extra ->
        Result.is_error
          (Rpc.decode
             (raw_conv_batch_frame
                ~count:((1 lsl 26) + 1 + extra)
                ~item_len:1 ~body_len:0)));
    Test.make ~name:"rpc ragged batches rejected at encode" ~count:50
      (pair (int_range 0 20) (int_range 0 20))
      (fun (la, lb) ->
        la = lb
        || (try
              ignore
                (Rpc.encode
                   (Rpc.Conv_batch
                      {
                        round = 1;
                        onions = [| Bytes.make la 'a'; Bytes.make lb 'b' |];
                      }));
              false
            with Vuvuzela_mixnet.Wire.Error _ -> true));
    Test.make ~name:"address book serialize roundtrip" ~count:30
      (small_list (string_gen_of_size (Gen.int_range 1 20) Gen.printable))
      (fun names ->
        let book = Address_book.create () in
        List.iteri
          (fun i name ->
            Address_book.add book (mk_contact name (Printf.sprintf "ab-p%d" i)))
          names;
        match Address_book.deserialize (Address_book.serialize book) with
        | Ok book' -> Address_book.size book' = Address_book.size book
        | Error _ -> false);
  ]

let suite =
  let tc = Alcotest.test_case in
  ( "infra",
    [
      tc "rpc roundtrips" `Quick test_rpc_roundtrips;
      tc "rpc rejections" `Quick test_rpc_rejections;
      tc "rpc fuzz" `Quick test_rpc_fuzz;
      tc "trace context wire fuzz" `Quick test_trace_ctx_wire;
      tc "rpc batch byte accounting" `Quick test_rpc_batch_bytes;
      tc "rpc status formatting" `Quick test_rpc_status_pp;
      tc "cdn caching" `Quick test_cdn_caching;
      tc "cdn spread and eviction" `Quick test_cdn_spread_and_eviction;
      tc "cdn against live chain" `Quick test_cdn_against_live_chain;
      tc "address book basics" `Quick test_address_book_basics;
      tc "address book serialization" `Quick test_address_book_serialization;
      tc "address book vetting" `Quick test_address_book_vetting;
      tc "address book rename" `Quick test_address_book_rename;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props )

(* CDN integrated into the deployment's dialing downloads. *)
let test_network_with_cdn () =
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "net-cdn"
        |> with_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_noise_mode Noise.Deterministic |> with_cdn_edges 2)
  in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  let _extras =
    List.init 6 (fun i -> Network.connect ~seed:(Printf.sprintf "x%d" i) net)
  in
  Client.dial a ~callee_pk:(Client.public_key b);
  let events = (Network.run ~kind:Round.Dialing net).Network.events in
  Alcotest.(check int) "call delivered through cdn" 1 (List.length events);
  match Network.cdn_stats net with
  | Some s ->
      (* 8 clients fetched the (single) drop; origin served each edge at
         most once. *)
      Alcotest.(check int) "all fetches went through the cdn" 8
        (s.Cdn.edge_hits + s.Cdn.edge_misses);
      Alcotest.(check bool) "origin requests bounded by edges" true
        (s.Cdn.origin_requests <= 2)
  | None -> Alcotest.fail "cdn stats missing"

let suite =
  (fst suite, snd suite @ [ Alcotest.test_case "network with cdn" `Quick test_network_with_cdn ])
