(* Loopback multi-process deployment: 3 forked server daemons, a
   coordinator in this process, real TCP on 127.0.0.1.

   The checks mirror the ISSUE's acceptance gate:
   - a seeded 3-server deployment runs 3 conversation rounds and a
     dialing round whose wire transcript digest is bit-identical to the
     in-process chain's (and to the pinned constant) — lockstep, and
     again with every link streaming chunked batch parts;
   - a full [Network.of_config_tcp] deployment delivers messages and
     confirms dialing acks over the supervisor;
   - a crash fault at a middle server is survived by the supervisor's
     retry path within [max_retries];
   - a middle server killed with SIGKILL and restarted from its seed is
     survived the same way.

   Plain executable: forking is only safe in a process that never
   spawned a domain, so this cannot live inside the alcotest binary. *)

open Vuvuzela_dp
open Vuvuzela
module Addr = Vuvuzela_transport.Addr
module Fault = Vuvuzela_faults.Fault

let failures = ref 0

let check name cond =
  if cond then Printf.printf "  ok: %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  FAIL: %s\n%!" name
  end

let check_str name expected got =
  if expected = got then Printf.printf "  ok: %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  FAIL: %s\n    expected %s\n    got      %s\n%!" name
      expected got
  end

(* ------------------------------------------------------------------ *)
(* Process plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let sockets_allowed () =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd -> (
      match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) with
      | () ->
          Unix.close fd;
          true
      | exception Unix.Unix_error _ ->
          Unix.close fd;
          false)

(* Bind port 0, read the assignment, release it.  The daemon rebinds
   moments later under SO_REUSEADDR; collisions on loopback in a test
   sandbox are vanishingly rare. *)
let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let chain_len = 3

let daemon_cfg ~seed ~ports ~index ?fault_plan ?pipeline_chunk ?link
    ?(flap_grace_ms = 2000.) ?(jobs = 1) ?(deaddrop_shards = 1) ?metrics_port
    () =
  {
    Daemon.listen = Addr.loopback ~port:ports.(index);
    next =
      (if index = chain_len - 1 then None
       else Some (Addr.loopback ~port:ports.(index + 1)));
    index;
    chain_len;
    seed = Some seed;
    noise = Transcript_pin.noise;
    dial_noise = Transcript_pin.dial_noise;
    noise_mode = Noise.Deterministic;
    dial_kind = Dialing.Plain;
    jobs;
    deaddrop_shards;
    pipeline_chunk;
    fault_plan;
    link;
    flap_grace_ms;
    metrics_listen = Option.map (fun port -> Addr.loopback ~port) metrics_port;
    trace_out = None;
  }

let debug = Sys.getenv_opt "NET_DEBUG" <> None

let fork_daemon cfg =
  match Unix.fork () with
  | 0 ->
      let log =
        if debug then fun m ->
          Printf.eprintf "[daemon %d] %s\n%!" cfg.Daemon.index m
        else fun _ -> ()
      in
      (match Daemon.run ~log cfg with
      | Ok () -> ()
      | Error e ->
          if debug then
            Printf.eprintf "[daemon %d] startup error: %s\n%!"
              cfg.Daemon.index e
      | exception e ->
          if debug then
            Printf.eprintf "[daemon %d] exception: %s\n%!" cfg.Daemon.index
              (Printexc.to_string e));
      Unix._exit 0
  | pid -> pid

(* Reap a daemon: give the Bye a moment to land, then force. *)
let stop_pid pid =
  let deadline = Unix.gettimeofday () +. 3.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid)
        end
        else begin
          Unix.sleepf 0.02;
          wait ()
        end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  wait ()

let spawn_chain ?fault_plan_for ?pipeline_chunk ?jobs ?deaddrop_shards ~seed
    ports =
  Array.to_list
    (Array.init chain_len (fun i ->
         (* last server first, so the handshake cascade settles fast;
            dial-with-backoff makes any order work *)
         let index = chain_len - 1 - i in
         let fault_plan =
           match fault_plan_for with
           | Some (j, plan) when j = index -> Some plan
           | _ -> None
         in
         fork_daemon
           (daemon_cfg ~seed ~ports ~index ?fault_plan ?pipeline_chunk ?jobs
              ?deaddrop_shards ())))

let with_chain ?fault_plan_for ?pipeline_chunk ?jobs ?deaddrop_shards ~seed f =
  let ports = Array.init chain_len (fun _ -> free_port ()) in
  let pids =
    spawn_chain ?fault_plan_for ?pipeline_chunk ?jobs ?deaddrop_shards ~seed
      ports
  in
  Fun.protect
    ~finally:(fun () -> List.iter stop_pid pids)
    (fun () -> f ports)

(* ------------------------------------------------------------------ *)
(* 1. Transcript parity: TCP chain ≡ in-process chain, bit for bit     *)
(* ------------------------------------------------------------------ *)

let test_transcript_parity () =
  print_endline "transcript parity (3 conv rounds + 1 dialing round):";
  with_chain ~seed:Transcript_pin.seed (fun ports ->
      match
        Remote.connect ~handshake_timeout_ms:20_000.
          ~addr:(Addr.loopback ~port:ports.(0))
          ()
      with
      | Error e -> check ("remote connect: " ^ e) false
      | Ok remote ->
          Remote.set_deadline_ms remote (Some 30_000.);
          let fail_status st =
            failwith (Format.asprintf "%a" Rpc.pp_status st)
          in
          let backend =
            {
              Transcript_pin.pks = Remote.public_keys remote;
              conversation_round =
                (fun ~round requests ->
                  match Remote.conversation_round remote ~round requests with
                  | Ok replies -> replies
                  | Error st -> fail_status st);
              dialing_round =
                (fun ~round ~m requests ->
                  match Remote.dialing_round remote ~round ~m requests with
                  | Ok acks -> acks
                  | Error st -> fail_status st);
            }
          in
          check "3 server public keys over handshake"
            (List.length backend.Transcript_pin.pks = chain_len);
          let tcp_digest = Transcript_pin.full_digest backend in
          check_str "loopback digest = pinned digest"
            Transcript_pin.pinned_full_digest tcp_digest;
          let in_process_digest =
            let b, shutdown = Transcript_pin.in_process () in
            Fun.protect ~finally:shutdown (fun () ->
                Transcript_pin.full_digest b)
          in
          check_str "loopback digest = in-process digest" in_process_digest
            tcp_digest;
          let stats = Remote.stats remote in
          check "wire counters moved"
            (stats.Vuvuzela_transport.Conn.bytes_out > 0
            && stats.Vuvuzela_transport.Conn.bytes_in > 0);
          Remote.shutdown remote)

(* ------------------------------------------------------------------ *)
(* 1b. Same parity with every link streaming chunked batch parts       *)
(* ------------------------------------------------------------------ *)

let test_transcript_parity_pipelined () =
  print_endline "pipelined transcript parity (chunk 4 on every link):";
  with_chain ~pipeline_chunk:4 ~seed:Transcript_pin.seed (fun ports ->
      match
        Remote.connect ~handshake_timeout_ms:20_000.
          ~addr:(Addr.loopback ~port:ports.(0))
          ()
      with
      | Error e -> check ("remote connect: " ^ e) false
      | Ok remote ->
          Remote.set_deadline_ms remote (Some 30_000.);
          Remote.set_pipeline remote (Some 4);
          let fail_status st =
            failwith (Format.asprintf "%a" Rpc.pp_status st)
          in
          let backend =
            {
              Transcript_pin.pks = Remote.public_keys remote;
              conversation_round =
                (fun ~round requests ->
                  match Remote.conversation_round remote ~round requests with
                  | Ok replies -> replies
                  | Error st -> fail_status st);
              dialing_round =
                (fun ~round ~m requests ->
                  match Remote.dialing_round remote ~round ~m requests with
                  | Ok acks -> acks
                  | Error st -> fail_status st);
            }
          in
          let tcp_digest = Transcript_pin.full_digest backend in
          check_str "pipelined loopback digest = pinned digest"
            Transcript_pin.pinned_full_digest tcp_digest;
          Remote.shutdown remote)

(* ------------------------------------------------------------------ *)
(* 1c. Scale-plane parity: sharded dead drops + streamed entry tier    *)
(*     over real daemons, at jobs 1 and 4 — still the pinned bytes     *)
(* ------------------------------------------------------------------ *)

let test_transcript_parity_scale_plane () =
  print_endline
    "scale-plane transcript parity (4 dead-drop shards, streamed entry):";
  List.iter
    (fun jobs ->
      with_chain ~pipeline_chunk:4 ~jobs ~deaddrop_shards:4
        ~seed:Transcript_pin.seed (fun ports ->
          match
            Remote.connect ~handshake_timeout_ms:20_000.
              ~addr:(Addr.loopback ~port:ports.(0))
              ()
          with
          | Error e -> check ("remote connect: " ^ e) false
          | Ok remote ->
              Remote.set_deadline_ms remote (Some 30_000.);
              let fail_status st =
                failwith (Format.asprintf "%a" Rpc.pp_status st)
              in
              (* Awkward chunk size on purpose: the last part is a
                 short tail, exercising the [last]-frame path. *)
              let chunk = 3 in
              let feed_chunks requests feed =
                let n = Array.length requests in
                let off = ref 0 in
                while !off < n do
                  let len = min chunk (n - !off) in
                  feed (Array.sub requests !off len);
                  off := !off + len
                done
              in
              let backend =
                {
                  Transcript_pin.pks = Remote.public_keys remote;
                  conversation_round =
                    (fun ~round requests ->
                      match
                        Remote.conversation_round_streamed remote ~round
                          ~produce:(feed_chunks requests)
                      with
                      | Ok replies -> replies
                      | Error st -> fail_status st);
                  dialing_round =
                    (fun ~round ~m requests ->
                      match
                        Remote.dialing_round_streamed remote ~round ~m
                          ~produce:(feed_chunks requests)
                      with
                      | Ok acks -> acks
                      | Error st -> fail_status st);
                }
              in
              let tcp_digest = Transcript_pin.full_digest backend in
              check_str
                (Printf.sprintf
                   "sharded+streamed loopback digest = pinned digest (jobs=%d)"
                   jobs)
                Transcript_pin.pinned_full_digest tcp_digest;
              Remote.shutdown remote))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* 2. Full supervisor over TCP: delivery + dialing acks                *)
(* ------------------------------------------------------------------ *)

let tcp_config =
  Network.Config.(
    default |> with_noise Transcript_pin.noise
    |> with_dial_noise Transcript_pin.dial_noise
    |> with_handshake_timeout_ms 20_000.)

let test_network_smoke () =
  print_endline "Network.of_config_tcp smoke (4 clients):";
  with_chain ~seed:"net-smoke" (fun ports ->
      match
        Network.of_config_tcp
          Network.Config.(tcp_config |> with_round_deadline_ms 30_000.)
          ~addr:(Addr.loopback ~port:ports.(0))
      with
      | Error e -> check ("of_config_tcp: " ^ e) false
      | Ok net ->
          check "is_remote" (Network.is_remote net);
          let a = Network.connect ~seed:"net-a" net in
          let b = Network.connect ~seed:"net-b" net in
          let c = Network.connect ~seed:"net-c" net in
          let d = Network.connect ~seed:"net-d" net in
          Client.start_conversation a ~peer_pk:(Client.public_key b);
          Client.start_conversation b ~peer_pk:(Client.public_key a);
          Client.start_conversation c ~peer_pk:(Client.public_key d);
          Client.start_conversation d ~peer_pk:(Client.public_key c);
          Client.send a "hello over real tcp";
          Client.send c "second pair, second link";
          let reports = Network.run_rounds net 3 in
          check "3 conversation rounds completed"
            (List.for_all (fun r -> r.Network.failure = None) reports);
          check "single attempt each"
            (List.for_all (fun r -> r.Network.attempts = 1) reports);
          let delivered =
            List.concat_map
              (fun (_, evs) ->
                List.filter_map
                  (function
                    | Client.Delivered { text; _ } -> Some text | _ -> None)
                  evs)
              (Network.events_of reports)
          in
          check "both texts delivered"
            (List.mem "hello over real tcp" delivered
            && List.mem "second pair, second link" delivered);
          let dial = Network.run ~kind:Round.Dialing net in
          check "dialing round completed" (dial.Network.failure = None);
          check "all 4 acks confirmed" (dial.Network.confirmed_acks = 4);
          Network.shutdown net)

(* ------------------------------------------------------------------ *)
(* 3. Socket-level crash fault: supervisor retries within max_retries  *)
(* ------------------------------------------------------------------ *)

let test_crash_retry () =
  print_endline "crash fault at middle server, supervisor retry:";
  let plan = [ { Fault.round = 1; server = 1; kind = Fault.Crash } ] in
  with_chain ~seed:"net-fault" ~fault_plan_for:(1, plan) (fun ports ->
      match
        Network.of_config_tcp
          Network.Config.(
            tcp_config |> with_round_deadline_ms 10_000. |> with_max_retries 3)
          ~addr:(Addr.loopback ~port:ports.(0))
      with
      | Error e -> check ("of_config_tcp: " ^ e) false
      | Ok net ->
          let a = Network.connect ~seed:"fault-a" net in
          let b = Network.connect ~seed:"fault-b" net in
          Client.start_conversation a ~peer_pk:(Client.public_key b);
          Client.start_conversation b ~peer_pk:(Client.public_key a);
          Client.send a "survives the crash";
          let r = Network.run ~kind:Round.Conversation net in
          check "round recovered" (r.Network.failure = None);
          check "took a retry" (r.Network.attempts = 2);
          check "abort recorded" (List.length r.Network.aborts = 1);
          let r2 = Network.run ~kind:Round.Conversation net in
          check "delivery after recovery"
            (List.exists
               (fun (_, evs) ->
                 List.exists
                   (function
                     | Client.Delivered { text; _ } ->
                         text = "survives the crash"
                     | _ -> false)
                   evs)
               (r.Network.events @ r2.Network.events));
          Network.shutdown net)

(* ------------------------------------------------------------------ *)
(* 4. SIGKILL + restart of the middle server                           *)
(* ------------------------------------------------------------------ *)

let test_kill_restart () =
  print_endline "kill -9 the middle server, restart it, keep running:";
  let seed = "net-restart" in
  let ports = Array.init chain_len (fun _ -> free_port ()) in
  let pids = ref (spawn_chain ~seed ports) in
  Fun.protect
    ~finally:(fun () -> List.iter stop_pid !pids)
    (fun () ->
      match
        Network.of_config_tcp
          Network.Config.(
            tcp_config |> with_round_deadline_ms 15_000. |> with_max_retries 4)
          ~addr:(Addr.loopback ~port:ports.(0))
      with
      | Error e -> check ("of_config_tcp: " ^ e) false
      | Ok net ->
          let a = Network.connect ~seed:"restart-a" net in
          let b = Network.connect ~seed:"restart-b" net in
          Client.start_conversation a ~peer_pk:(Client.public_key b);
          Client.start_conversation b ~peer_pk:(Client.public_key a);
          let r1 = Network.run ~kind:Round.Conversation net in
          check "round before the kill" (r1.Network.failure = None);
          (* SIGKILL the middle server: no goodbye, no flush. *)
          let victim = List.nth !pids 1 in
          Unix.kill victim Sys.sigkill;
          ignore (Unix.waitpid [] victim);
          pids := List.filteri (fun i _ -> i <> 1) !pids;
          (* Restart it from the same seed; it re-derives its keys and
             rejoins via the handshake cascade. *)
          pids := fork_daemon (daemon_cfg ~seed ~ports ~index:1 ()) :: !pids;
          Client.send a "through the restart";
          let r2 = Network.run ~kind:Round.Conversation net in
          check "round after restart recovered" (r2.Network.failure = None);
          let r3 = Network.run ~kind:Round.Conversation net in
          check "delivery after restart"
            (List.exists
               (fun (_, evs) ->
                 List.exists
                   (function
                     | Client.Delivered { text; _ } ->
                         text = "through the restart"
                     | _ -> false)
                   evs)
               (r2.Network.events @ r3.Network.events));
          Network.shutdown net)

(* ------------------------------------------------------------------ *)
(* 5. Link flap mid-round: outbox + flap grace save the round          *)
(* ------------------------------------------------------------------ *)

let test_flap_survival () =
  print_endline "link flap at middle server, outbox re-delivery under grace:";
  let plan = [ { Fault.round = 1; server = 1; kind = Fault.Flap 0 } ] in
  with_chain ~seed:"net-flap" ~fault_plan_for:(1, plan) (fun ports ->
      match
        Network.of_config_tcp
          Network.Config.(
            tcp_config |> with_round_deadline_ms 20_000. |> with_max_retries 3
            |> with_flap_grace_ms 5_000.)
          ~addr:(Addr.loopback ~port:ports.(0))
      with
      | Error e -> check ("of_config_tcp: " ^ e) false
      | Ok net ->
          let a = Network.connect ~seed:"flap-a" net in
          let b = Network.connect ~seed:"flap-b" net in
          Client.start_conversation a ~peer_pk:(Client.public_key b);
          Client.start_conversation b ~peer_pk:(Client.public_key a);
          Client.send a "rides out the flap";
          let r = Network.run ~kind:Round.Conversation net in
          check "flapped round completed" (r.Network.failure = None);
          (* The whole point: the link healed inside the grace, the
             middle server's outbox re-delivered the reply, and the
             round cost latency — not an abort + retry. *)
          check "survived without a retry" (r.Network.attempts = 1);
          check "no abort recorded" (r.Network.aborts = []);
          let r2 = Network.run ~kind:Round.Conversation net in
          check "delivery through the flap"
            (List.exists
               (fun (_, evs) ->
                 List.exists
                   (function
                     | Client.Delivered { text; _ } ->
                         text = "rides out the flap"
                     | _ -> false)
                   evs)
               (r.Network.events @ r2.Network.events));
          Network.shutdown net)

(* ------------------------------------------------------------------ *)
(* 6. Emulated WAN links: shaping delays frames, never changes them    *)
(* ------------------------------------------------------------------ *)

let test_shaped_links () =
  print_endline "emulated 10 ms links on every hop (digest must not move):";
  let link = Vuvuzela_transport.Shaper.config ~latency_ms:10. () in
  let ports = Array.init chain_len (fun _ -> free_port ()) in
  let pids =
    Array.to_list
      (Array.init chain_len (fun i ->
           let index = chain_len - 1 - i in
           fork_daemon
             (daemon_cfg ~seed:Transcript_pin.seed ~ports ~index ~link ())))
  in
  Fun.protect
    ~finally:(fun () -> List.iter stop_pid pids)
    (fun () ->
      match
        Remote.connect ~handshake_timeout_ms:20_000.
          ~link:(Vuvuzela_transport.Shaper.with_seed "net-shaped-coord" link)
          ~addr:(Addr.loopback ~port:ports.(0))
          ()
      with
      | Error e -> check ("remote connect: " ^ e) false
      | Ok remote ->
          Remote.set_deadline_ms remote (Some 30_000.);
          let fail_status st =
            failwith (Format.asprintf "%a" Rpc.pp_status st)
          in
          let t0 = Unix.gettimeofday () in
          let backend =
            {
              Transcript_pin.pks = Remote.public_keys remote;
              conversation_round =
                (fun ~round requests ->
                  match Remote.conversation_round remote ~round requests with
                  | Ok replies -> replies
                  | Error st -> fail_status st);
              dialing_round =
                (fun ~round ~m requests ->
                  match Remote.dialing_round remote ~round ~m requests with
                  | Ok acks -> acks
                  | Error st -> fail_status st);
            }
          in
          let digest = Transcript_pin.full_digest backend in
          let elapsed_ms = 1000. *. (Unix.gettimeofday () -. t0) in
          check_str "shaped-link digest = pinned digest"
            Transcript_pin.pinned_full_digest digest;
          (* 4 rounds, each crossing 3 shaped forward links at ≥ 10 ms
             per frame: emulated latency must actually have passed. *)
          check "emulated latency actually applied" (elapsed_ms > 80.);
          Remote.shutdown remote)

(* ------------------------------------------------------------------ *)
(* 7. Observability plane: scrape endpoints, merged trace, digest      *)
(* ------------------------------------------------------------------ *)

module T = Vuvuzela_telemetry
module Httpd = Vuvuzela_transport.Httpd

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let spawn_obs_chain ?(jobs = 1) ~seed ~ports ~mports () =
  Array.to_list
    (Array.init chain_len (fun i ->
         let index = chain_len - 1 - i in
         fork_daemon
           (daemon_cfg ~seed ~ports ~index ~pipeline_chunk:4 ~jobs
              ~metrics_port:mports.(index) ())))

(* A full [--obs-dir] deployment: daemons expose scrape endpoints, the
   coordinator traces its rounds, and shutdown collects everything.
   Checks the live /metrics + /healthz answers, then the merged trace's
   cross-process parent links, then the rendered digest. *)
let test_observability () =
  print_endline "observability plane (scrape endpoints + merged trace + digest):";
  let ports = Array.init chain_len (fun _ -> free_port ()) in
  let mports = Array.init chain_len (fun _ -> free_port ()) in
  let pids = spawn_obs_chain ~seed:"net-obs" ~ports ~mports () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vuvuzela-obs-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> List.iter stop_pid pids)
    (fun () ->
      let telemetry = T.Telemetry.create () in
      match
        Network.of_config_tcp
          Network.Config.(
            tcp_config |> with_round_deadline_ms 30_000.
            |> with_pipeline ~chunk:4 true
            |> with_telemetry telemetry |> with_obs_dir dir
            |> with_obs_scrape
                 (Array.to_list
                    (Array.mapi
                       (fun i port -> (i, Addr.loopback ~port))
                       mports)))
          ~addr:(Addr.loopback ~port:ports.(0))
      with
      | Error e -> check ("of_config_tcp: " ^ e) false
      | Ok net ->
          let a = Network.connect ~seed:"obs-a" net in
          let b = Network.connect ~seed:"obs-b" net in
          Client.start_conversation a ~peer_pk:(Client.public_key b);
          Client.start_conversation b ~peer_pk:(Client.public_key a);
          Client.send a "observed round";
          let reports = Network.run_rounds net 2 in
          check "2 rounds completed"
            (List.for_all (fun r -> r.Network.failure = None) reports);
          (* Live scrape of the middle daemon while the chain is up. *)
          let maddr = Addr.loopback ~port:mports.(1) in
          (match Httpd.get maddr "/metrics" with
          | Ok (200, body) ->
              check "/metrics serves the stage histogram family"
                (contains body "vuvuzela_stage_ms_bucket");
              check "/metrics serves the hop counter"
                (contains body "vuvuzela_daemon_hops_total");
              check "/metrics serves net gauges"
                (contains body "vuvuzela_net_frames_in")
          | Ok (status, _) ->
              check (Printf.sprintf "/metrics answered %d" status) false
          | Error e -> check ("/metrics: " ^ e) false);
          (match Httpd.get maddr "/healthz" with
          | Ok (200, body) -> (
              match T.Json.parse body with
              | Error e -> check ("/healthz parses: " ^ e) false
              | Ok json ->
                  let str k = Option.bind (T.Json.member k json) T.Json.to_str in
                  let int k = Option.bind (T.Json.member k json) T.Json.to_int in
                  let flag k =
                    Option.bind (T.Json.member k json) T.Json.to_bool
                  in
                  check "/healthz status ok" (str "status" = Some "ok");
                  check "/healthz chain position"
                    (int "index" = Some 1 && int "chain_len" = Some chain_len);
                  check "/healthz round progressed"
                    (match int "round" with Some r -> r >= 2 | None -> false);
                  check "/healthz hops counted"
                    (match int "hops_done" with Some h -> h >= 2 | None -> false);
                  check "/healthz peers connected"
                    (flag "upstream_connected" = Some true
                    && flag "downstream_connected" = Some true))
          | Ok (status, _) ->
              check (Printf.sprintf "/healthz answered %d" status) false
          | Error e -> check ("/healthz: " ^ e) false);
          (match Httpd.get maddr "/nope" with
          | Ok (404, _) -> check "unknown path answers 404" true
          | Ok (status, _) ->
              check (Printf.sprintf "unknown path answered %d" status) false
          | Error e -> check ("unknown path: " ^ e) false);
          (* Shutdown scrapes the daemons, merges the traces and renders
             the digest — all before the Bye cascade. *)
          Network.shutdown net;
          let merged_path = Filename.concat dir "merged-trace.jsonl" in
          check "merged trace written" (Sys.file_exists merged_path);
          if Sys.file_exists merged_path then begin
            let merged = read_file merged_path in
            check "merged trace passes the schema checker"
              (T.Trace.validate_jsonl merged = Ok ());
            (* Every daemon hop/stage span must reach a coordinator
               round root through parent links alone. *)
            let spans =
              String.split_on_char '\n' merged
              |> List.filter (fun l -> String.trim l <> "")
              |> List.filter_map (fun l ->
                     match T.Json.parse l with
                     | Error _ -> None
                     | Ok j ->
                         let get f k = Option.bind (T.Json.member k j) f in
                         Some
                           ( Option.value ~default:(-1) (get T.Json.to_int "id"),
                             get T.Json.to_int "parent",
                             Option.value ~default:"?" (get T.Json.to_str "process"),
                             Option.value ~default:"?" (get T.Json.to_str "name") ))
            in
            let tbl = Hashtbl.create 256 in
            List.iter
              (fun (id, parent, process, name) ->
                Hashtbl.replace tbl id (parent, process, name))
              spans;
            let rec root_of id =
              match Hashtbl.find_opt tbl id with
              | None -> None
              | Some (None, process, name) -> Some (process, name)
              | Some (Some p, _, _) -> root_of p
            in
            let daemon_work =
              List.filter
                (fun (_, _, process, name) ->
                  process <> "coordinator"
                  && (name = "hop" || List.mem name T.Telemetry.server_stages))
                spans
            in
            check "daemon hop/stage spans present in the merge"
              (List.length daemon_work > 0
              && List.exists (fun (_, _, p, n) -> p = "server-2" && n = "hop")
                   daemon_work);
            check "every daemon span roots at the coordinator"
              (List.for_all
                 (fun (id, _, _, _) ->
                   match root_of id with
                   | Some ("coordinator", ("conv-round" | "dial-round")) -> true
                   | _ -> false)
                 daemon_work)
          end;
          check "daemon metrics scraped"
            (Sys.file_exists (Filename.concat dir "daemon-1-metrics.prom"));
          check "daemon healthz scraped"
            (Sys.file_exists (Filename.concat dir "daemon-1-healthz.json"));
          check "round events logged"
            (contains
               (read_file (Filename.concat dir "events.jsonl"))
               "\"event\":\"round\"");
          let digest_path = Filename.concat dir "digest.txt" in
          check "digest rendered" (Sys.file_exists digest_path);
          if Sys.file_exists digest_path then begin
            let digest = read_file digest_path in
            check "digest counts the rounds" (contains digest "conv round 1");
            check "digest draws the waterfall" (contains digest "hop")
          end;
          match Obs.render_digest ~dir with
          | Ok _ -> check "inspector re-renders from disk" true
          | Error e -> check ("inspector: " ^ e) false)

(* ------------------------------------------------------------------ *)
(* 7b. Digest parity with observability on, jobs × pipeline            *)
(* ------------------------------------------------------------------ *)

(* The acceptance bar for the whole plane: the pinned transcript, over
   TCP, with every daemon scraping and tracing and the coordinator
   announcing round contexts — bit-identical at jobs 1 and 4 with the
   streamed relay on. *)
let test_obs_transcript_parity () =
  print_endline
    "transcript parity with observability on (jobs 1 and 4, pipelined):";
  List.iter
    (fun jobs ->
      let ports = Array.init chain_len (fun _ -> free_port ()) in
      let mports = Array.init chain_len (fun _ -> free_port ()) in
      let pids =
        spawn_obs_chain ~jobs ~seed:Transcript_pin.seed ~ports ~mports ()
      in
      Fun.protect
        ~finally:(fun () -> List.iter stop_pid pids)
        (fun () ->
          let tel = T.Telemetry.create () in
          match
            Remote.connect ~telemetry:tel ~handshake_timeout_ms:20_000.
              ~addr:(Addr.loopback ~port:ports.(0))
              ()
          with
          | Error e -> check ("remote connect: " ^ e) false
          | Ok remote ->
              Remote.set_deadline_ms remote (Some 30_000.);
              Remote.set_pipeline remote (Some 4);
              let fail_status st =
                failwith (Format.asprintf "%a" Rpc.pp_status st)
              in
              let tr = T.Telemetry.trace tel in
              (* The coordinator side of the tentpole, as [Network]
                 wires it: a root span per round, its context announced
                 ahead of the batch. *)
              let traced name ~round ~dialing f =
                let span = T.Trace.begin_span tr ~name ~round ~dialing () in
                Remote.set_trace_ctx remote
                  (Some (T.Trace.context_of tr span));
                Fun.protect
                  ~finally:(fun () ->
                    Remote.set_trace_ctx remote None;
                    T.Trace.end_span tr span)
                  f
              in
              let backend =
                {
                  Transcript_pin.pks = Remote.public_keys remote;
                  conversation_round =
                    (fun ~round requests ->
                      traced "conv-round" ~round ~dialing:false (fun () ->
                          match
                            Remote.conversation_round remote ~round requests
                          with
                          | Ok replies -> replies
                          | Error st -> fail_status st));
                  dialing_round =
                    (fun ~round ~m requests ->
                      traced "dial-round" ~round ~dialing:true (fun () ->
                          match
                            Remote.dialing_round remote ~round ~m requests
                          with
                          | Ok acks -> acks
                          | Error st -> fail_status st));
                }
              in
              let digest = Transcript_pin.full_digest backend in
              check_str
                (Printf.sprintf "obs-on digest = pinned digest (jobs=%d)" jobs)
                Transcript_pin.pinned_full_digest digest;
              check
                (Printf.sprintf "coordinator recorded round roots (jobs=%d)"
                   jobs)
                (T.Trace.span_count tr >= 4);
              Remote.shutdown remote))
    [ 1; 4 ]

let () =
  if not (sockets_allowed ()) then begin
    print_endline
      "net: SKIPPED — this sandbox forbids loopback TCP (socket/bind on \
       127.0.0.1 failed), so the multi-process deployment cannot run; \
       re-run outside the sandbox or grant network access to exercise \
       this suite";
    exit 0
  end;
  let only =
    match Sys.argv with [| _; name |] -> Some name | _ -> None
  in
  let run name f = if only = None || only = Some name then f () in
  run "transcript" test_transcript_parity;
  run "pipeline" test_transcript_parity_pipelined;
  run "scale" test_transcript_parity_scale_plane;
  run "smoke" test_network_smoke;
  run "crash" test_crash_retry;
  run "restart" test_kill_restart;
  run "flap" test_flap_survival;
  run "shaped" test_shaped_links;
  run "obs" test_observability;
  run "obs-parity" test_obs_transcript_parity;
  if !failures > 0 then begin
    Printf.printf "net: %d failure(s)\n%!" !failures;
    exit 1
  end
  else print_endline "net: all loopback deployment checks passed"
