(* The telemetry subsystem: registry semantics (bucketing, quantile
   estimation, exposition), the span tracer and its JSONL schema, the
   privacy-budget ledger against the DP composition theorem directly,
   and the two deployment-level contracts — full stage coverage per
   (round, server), and bit-identical rounds with telemetry on or off at
   any job count. *)

open Vuvuzela_dp
open Vuvuzela
module T = Vuvuzela_telemetry
module Metrics = T.Metrics
module Trace = T.Trace
module Ledger = T.Ledger
module Telemetry = T.Telemetry

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~labels:[ ("kind", "conv") ] "requests_total" in
  Metrics.inc c;
  Metrics.inc ~by:2.5 c;
  (* Same (name, labels) → the same handle. *)
  Metrics.inc (Metrics.counter reg ~labels:[ ("kind", "conv") ] "requests_total");
  Alcotest.check feq "counter accumulates" 4.5 (Metrics.counter_value c);
  (* Different labels → a different series. *)
  Alcotest.check feq "label isolation" 0.
    (Metrics.counter_value
       (Metrics.counter reg ~labels:[ ("kind", "dial") ] "requests_total"));
  Alcotest.check_raises "counters are monotone"
    (Invalid_argument "Metrics.inc: counters are monotone") (fun () ->
      Metrics.inc ~by:(-1.) c);
  let g = Metrics.gauge reg "budget_eps" in
  Metrics.set g 3.5;
  Metrics.set g 1.25;
  Alcotest.check feq "gauge is last-write" 1.25 (Metrics.gauge_value g);
  Alcotest.check_raises "type clash rejected"
    (Invalid_argument "Metrics: budget_eps is not a counter") (fun () ->
      ignore (Metrics.counter reg "budget_eps"))

(* Exact quantile values on a hand-built distribution, following the
   documented estimator: rank q·count, linear interpolation inside the
   bucket (from 0 in the first bucket), +inf degrades to the largest
   finite bound. *)
let test_histogram_quantiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 1.; 2.; 4.; 8. |] "lat_ms" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 3.5; 6.0; 20.0 ];
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Alcotest.check feq "sum" 34.5 (Metrics.hist_sum h);
  (* rank 3 lands in (2, 4] holding observations 3 and 4 cumulative:
     2 + (4-2)·(3-2)/2 = 3. *)
  Alcotest.check feq "p50" 3.0 (Metrics.quantile h 0.5);
  (* rank 1.5 lands in (1, 2]: 1 + 1·(1.5-1)/1 = 1.5. *)
  Alcotest.check feq "p25" 1.5 (Metrics.quantile h 0.25);
  (* rank 6 lands in the +inf bucket → largest finite bound. *)
  Alcotest.check feq "p100 degrades" 8.0 (Metrics.quantile h 1.0);
  Alcotest.check feq "p0 at bucket floor" 0.0 (Metrics.quantile h 0.0);
  (* A single-bucket histogram interpolates from 0. *)
  let one = Metrics.histogram reg ~buckets:[| 10. |] "one_bucket" in
  for _ = 1 to 4 do Metrics.observe one 5. done;
  Alcotest.check feq "single-bucket p50" 5.0 (Metrics.quantile one 0.5);
  Alcotest.check feq "empty histogram" 0.0
    (Metrics.quantile (Metrics.histogram reg ~buckets:[| 1. |] "empty") 0.5);
  Alcotest.check_raises "buckets must increase"
    (Invalid_argument "Metrics.histogram: bucket bounds must increase")
    (fun () -> ignore (Metrics.histogram reg ~buckets:[| 2.; 1. |] "bad"));
  Alcotest.check_raises "re-registration with other buckets"
    (Invalid_argument "Metrics: lat_ms re-registered with different buckets")
    (fun () -> ignore (Metrics.histogram reg ~buckets:[| 1. |] "lat_ms"))

let test_prometheus_exposition () =
  let reg = Metrics.create () in
  Metrics.inc ~by:3.
    (Metrics.counter reg ~help:"Requests seen" ~labels:[ ("kind", "conv") ]
       "requests_total");
  let h = Metrics.histogram reg ~buckets:[| 1.; 5. |] "lat_ms" in
  Metrics.observe h 0.5;
  Metrics.observe h 3.;
  Metrics.observe h 9.;
  let text = Metrics.to_prometheus reg in
  let expected =
    "# TYPE lat_ms histogram\n\
     lat_ms_bucket{le=\"1\"} 1\n\
     lat_ms_bucket{le=\"5\"} 2\n\
     lat_ms_bucket{le=\"+Inf\"} 3\n\
     lat_ms_sum 12.5\n\
     lat_ms_count 3\n\
     # HELP requests_total Requests seen\n\
     # TYPE requests_total counter\n\
     requests_total{kind=\"conv\"} 3\n"
  in
  Alcotest.(check string) "exposition" expected text;
  (* The JSON export parses back and carries the quantile estimates. *)
  match T.Json.parse (T.Json.to_string (Metrics.to_json reg)) with
  | Error e -> Alcotest.fail ("JSON export does not parse: " ^ e)
  | Ok json -> (
      match T.Json.member "histograms" json with
      | Some (T.Json.List [ hist ]) ->
          Alcotest.(check (option string)) "name" (Some "lat_ms")
            (Option.bind (T.Json.member "name" hist) T.Json.to_str);
          Alcotest.(check (option int)) "count" (Some 3)
            (Option.bind (T.Json.member "count" hist) T.Json.to_int)
      | _ -> Alcotest.fail "histograms missing from JSON export")

(* ------------------------------------------------------------------ *)
(* Span tracer                                                         *)
(* ------------------------------------------------------------------ *)

(* A fake clock makes durations exact. *)
let test_trace_nesting () =
  let now = ref 0. in
  let tr = Trace.create ~clock:(fun () -> !now) () in
  let root = Trace.begin_span tr ~name:"conv-round" ~round:1 () in
  now := 0.001;
  let child = Trace.begin_span tr ~name:"peel" ~round:1 ~server:0 () in
  Trace.annotate tr "fault.delay" "server=1";
  now := 0.004;
  Trace.end_span tr child;
  Trace.instant tr ~name:"exchange" ~round:1 ~server:0 ();
  now := 0.010;
  Trace.end_span tr root;
  match Trace.spans tr with
  | [ r; c; m ] ->
      Alcotest.(check (option int)) "root has no parent" None r.Trace.parent;
      Alcotest.(check (option int)) "child links to root" (Some r.Trace.id)
        c.Trace.parent;
      Alcotest.(check (option int)) "mark links to root" (Some r.Trace.id)
        m.Trace.parent;
      Alcotest.check feq "child duration" 3. c.Trace.dur_ms;
      Alcotest.check feq "mark is zero-duration" 0. m.Trace.dur_ms;
      Alcotest.check feq "root duration" 10. r.Trace.dur_ms;
      Alcotest.(check (list (pair string string)))
        "annotation on innermost open span"
        [ ("fault.delay", "server=1") ]
        c.Trace.annotations;
      (* The export validates against its own schema checker. *)
      (match Trace.validate_jsonl (Trace.to_jsonl tr) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("export rejected: " ^ e))
  | spans ->
      Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_validate_rejects () =
  let reject name s =
    match Trace.validate_jsonl s with
    | Ok () -> Alcotest.failf "%s accepted" name
    | Error _ -> ()
  in
  reject "empty input" "";
  reject "not json" "hello\n";
  reject "missing fields" "{\"id\":0}\n";
  reject "dangling parent"
    "{\"id\":0,\"parent\":7,\"name\":\"x\",\"round\":1,\"server\":-1,\
     \"dialing\":false,\"start_ms\":0,\"dur_ms\":0,\"annotations\":{}}\n"

(* Cross-process parenting: a coordinator tracer and a "daemon" tracer
   whose hop span carries the coordinator's wire context.  After the
   merge every daemon span must reach the coordinator's round root
   through parent links alone, the export must still satisfy the schema
   checker, and a context whose trace id does not match the root's must
   be dropped rather than resolved. *)
let test_remote_span_merge () =
  let now = ref 0. in
  let clock () = !now in
  let coord = Trace.create ~clock ~trace_id:71 ~origin:0 () in
  let daemon = Trace.create ~clock ~trace_id:9999 ~origin:1 () in
  (* Coordinator: round root, context announced over the (simulated)
     wire exactly as [Remote.exchange] sends it. *)
  let root = Trace.begin_span coord ~name:"conv-round" ~round:1 () in
  let ctx =
    match Trace.decode_context (Trace.encode_context (Trace.context_of coord root)) with
    | Some c -> c
    | None -> Alcotest.fail "wire context did not survive the codec"
  in
  (* Daemon: hop span rooted at the remote context, one stage under it. *)
  let hop = Trace.begin_remote_span daemon ~name:"hop" ~round:1 ~server:0 ~remote:ctx () in
  now := 0.002;
  let peel = Trace.begin_span daemon ~name:"peel" ~round:1 ~server:0 () in
  now := 0.003;
  Trace.end_span daemon peel;
  Trace.end_span daemon hop;
  (* A second daemon whose context belongs to some other trace: its hop
     must come out parentless, not mislinked. *)
  let stray = Trace.create ~clock ~trace_id:4242 ~origin:2 () in
  let stray_hop =
    Trace.begin_remote_span stray ~name:"hop" ~round:1 ~server:1
      ~remote:{ Trace.trace = 123456; origin = 0; span = 0 } ()
  in
  Trace.end_span stray stray_hop;
  now := 0.010;
  Trace.end_span coord root;
  let merged =
    match
      Trace.merge_jsonl
        [
          ("coordinator", Trace.to_jsonl coord);
          ("server-0", Trace.to_jsonl daemon);
          ("server-1", Trace.to_jsonl stray);
        ]
    with
    | Ok s -> s
    | Error e -> Alcotest.fail ("merge failed: " ^ e)
  in
  (match Trace.validate_jsonl merged with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("merged trace rejected: " ^ e));
  let lines =
    String.split_on_char '\n' merged
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           match T.Json.parse l with
           | Ok j -> j
           | Error e -> Alcotest.fail ("merged line does not parse: " ^ e))
  in
  let field name j = Option.bind (T.Json.member name j) T.Json.to_int in
  let named want =
    List.filter
      (fun j ->
        Option.bind (T.Json.member "name" j) T.Json.to_str = Some want)
      lines
  in
  let root_id =
    match named "conv-round" with
    | [ j ] -> Option.get (field "id" j)
    | _ -> Alcotest.fail "expected exactly one round root"
  in
  (match named "hop" with
  | [ a; b ] ->
      let by_process want =
        if Option.bind (T.Json.member "process" a) T.Json.to_str = Some want
        then a else b
      in
      Alcotest.(check (option int)) "hop parents into the round root"
        (Some root_id)
        (field "parent" (by_process "server-0"));
      Alcotest.(check (option int)) "foreign-trace context dropped" None
        (field "parent" (by_process "server-1"));
      Alcotest.(check bool) "ctx back-reference consumed" true
        (T.Json.member "ctx" (by_process "server-0") = None);
      (* Transitivity: the stage span reaches the root via the hop. *)
      let hop_id = Option.get (field "id" (by_process "server-0")) in
      (match named "peel" with
      | [ p ] ->
          Alcotest.(check (option int)) "stage parents into the hop"
            (Some hop_id) (field "parent" p)
      | _ -> Alcotest.fail "expected exactly one peel span")
  | hops -> Alcotest.failf "expected 2 hop spans, got %d" (List.length hops))

(* The exposition satellite: scrape output is deterministic (families
   and label sets sorted, registration order irrelevant) and label
   values escape exactly the three characters the Prometheus text
   format names — backslash, double quote, newline. *)
let test_prometheus_deterministic_escaped () =
  let build order =
    let reg = Metrics.create () in
    List.iter
      (fun (name, labels) ->
        Metrics.inc (Metrics.counter reg ~labels name))
      order;
    Metrics.set (Metrics.gauge reg "a_gauge") 2.;
    Metrics.to_prometheus reg
  in
  let series =
    [
      ("zz_total", [ ("kind", "conv") ]);
      ("aa_total", [ ("path", "C:\\temp") ]);
      ("mm_total", [ ("detail", "he said \"hi\"\nbye") ]);
      ("zz_total", [ ("kind", "dial") ]);
    ]
  in
  let text = build series in
  Alcotest.(check string) "registration order is invisible" text
    (build (List.rev series));
  let expected =
    "# TYPE a_gauge gauge\n\
     a_gauge 2\n\
     # TYPE aa_total counter\n\
     aa_total{path=\"C:\\\\temp\"} 1\n\
     # TYPE mm_total counter\n\
     mm_total{detail=\"he said \\\"hi\\\"\\nbye\"} 1\n\
     # TYPE zz_total counter\n\
     zz_total{kind=\"conv\"} 1\n\
     zz_total{kind=\"dial\"} 1\n"
  in
  Alcotest.(check string) "golden exposition" expected text

(* ------------------------------------------------------------------ *)
(* Privacy-budget ledger vs the composition theorem                    *)
(* ------------------------------------------------------------------ *)

let conv_noise = Laplace.params ~mu:3. ~b:1.
let dial_noise = Laplace.params ~mu:2. ~b:1.

let test_ledger_matches_composition () =
  let conv = Mechanism.conversation conv_noise in
  let dial = Mechanism.dialing dial_noise in
  let ledger = Ledger.create ~conv ~dial () in
  let alice = Bytes.of_string "alice-pk" in
  for _ = 1 to 10 do ignore (Ledger.charge ledger ~client:alice ~dialing:false) done;
  for _ = 1 to 3 do ignore (Ledger.charge ledger ~client:alice ~dialing:true) done;
  Alcotest.(check (pair int int)) "rounds tracked" (10, 3)
    (Ledger.rounds ledger ~client:alice);
  let spent = Ledger.spent ledger ~client:alice in
  (* The ledger's spend is the closed-form Theorem 2 composition of each
     protocol's charged rounds, summed — pinned to 1e-9. *)
  let c = Composition.compose ~k:10 ~d:Composition.default_d conv in
  let g = Composition.compose ~k:3 ~d:Composition.default_d dial in
  Alcotest.check feq "eps matches Composition"
    (c.Mechanism.eps +. g.Mechanism.eps) spent.Mechanism.eps;
  Alcotest.check feq "delta matches Composition"
    (c.Mechanism.delta +. g.Mechanism.delta) spent.Mechanism.delta;
  (* A never-seen client has spent exactly nothing. *)
  let zero = Ledger.spent ledger ~client:(Bytes.of_string "nobody") in
  Alcotest.check feq "unseen eps" 0. zero.Mechanism.eps;
  Alcotest.check feq "unseen delta" 0. zero.Mechanism.delta;
  Alcotest.check feq "worst is alice" spent.Mechanism.eps
    (Ledger.worst ledger).Mechanism.eps

let test_ledger_monotone_and_warns () =
  let conv = Mechanism.conversation conv_noise in
  let dial = Mechanism.dialing dial_noise in
  (* Warn once eps' crosses twice the single-round spend. *)
  let warn = 2.5 *. conv.Mechanism.eps in
  let ledger = Ledger.create ~warn_eps:warn ~conv ~dial () in
  let bob = Bytes.of_string "bob-pk" in
  let crossings = ref 0 in
  let prev = ref { Mechanism.eps = 0.; delta = 0. } in
  for i = 1 to 50 do
    if Ledger.charge ledger ~client:bob ~dialing:(i mod 5 = 0) then incr crossings;
    let s = Ledger.spent ledger ~client:bob in
    if s.Mechanism.eps < !prev.Mechanism.eps then
      Alcotest.failf "eps' decreased at round %d" i;
    if s.Mechanism.delta < !prev.Mechanism.delta then
      Alcotest.failf "delta' decreased at round %d" i;
    prev := s
  done;
  Alcotest.(check int) "warning fires exactly once" 1 !crossings;
  Alcotest.(check int) "over budget" 1 (Ledger.over_budget ledger);
  Alcotest.(check bool) "threshold really crossed" true
    (!prev.Mechanism.eps > warn)

(* ------------------------------------------------------------------ *)
(* Deployment wiring                                                   *)
(* ------------------------------------------------------------------ *)

let make_net ?telemetry ?fault_plan ?round_deadline_ms ?budget_warn ~jobs () =
  let opt f v cfg = match v with None -> cfg | Some v -> f v cfg in
  Network.of_config
    Network.Config.(
      default |> with_seed "tel-det" |> with_noise conv_noise
      |> with_dial_noise dial_noise |> with_noise_mode Noise.Sampled
      |> with_jobs jobs
      |> opt with_telemetry telemetry
      |> opt with_fault_plan fault_plan
      |> opt with_round_deadline_ms round_deadline_ms
      |> opt with_budget_warn budget_warn)

(* The same seeded workload as test_parallel's determinism check, with a
   dialing round in the schedule. *)
let run_deployment ?telemetry ~jobs () =
  let net = make_net ?telemetry ~jobs () in
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  let _idle =
    List.init 3 (fun i -> Network.connect ~seed:(Printf.sprintf "i%d" i) net)
  in
  Client.dial a ~callee_pk:(Client.public_key b);
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  Client.start_conversation b ~peer_pk:(Client.public_key a);
  Client.send a "telemetry must not perturb";
  Client.send b "the byte stream";
  let reports = Network.run_schedule ~dial_every:2 net ~rounds:4 in
  let histogram =
    match Chain.observed_histogram (Network.chain net) with
    | Some h -> (h.Deaddrop.m1, h.Deaddrop.m2)
    | None -> (-1, -1)
  in
  let transcript =
    List.map
      (fun r ->
        Printf.sprintf "round=%d dialing=%b batch=%d wire=%d acks=%d [%s]"
          r.Network.round r.Network.dialing r.Network.batch_size
          r.Network.wire_bytes r.Network.confirmed_acks
          (String.concat "; "
             (List.concat_map
                (fun (c, evs) ->
                  List.map
                    (fun e ->
                      Vuvuzela_crypto.Bytes_util.to_hex (Client.public_key c)
                      ^ ":"
                      ^ Format.asprintf "%a" Client.pp_event e)
                    evs)
                r.Network.events)))
      reports
  in
  Network.shutdown net;
  (histogram, transcript)

(* The acceptance contract: a seeded deployment is bit-identical with
   telemetry on or off, at jobs ∈ {1, 2, 4}. *)
let test_identical_with_and_without_telemetry () =
  let ref_h, ref_t = run_deployment ~jobs:1 () in
  Alcotest.(check bool) "events occurred" true
    (List.exists (fun line -> String.length line > 60) ref_t);
  List.iter
    (fun jobs ->
      let off = run_deployment ~jobs () in
      let tel = Telemetry.create () in
      let on = run_deployment ~telemetry:tel ~jobs () in
      Alcotest.(check (pair int int))
        (Printf.sprintf "histogram off jobs=%d" jobs)
        ref_h (fst off);
      Alcotest.(check (list string))
        (Printf.sprintf "transcript off jobs=%d" jobs)
        ref_t (snd off);
      Alcotest.(check (pair int int))
        (Printf.sprintf "histogram on jobs=%d" jobs)
        ref_h (fst on);
      Alcotest.(check (list string))
        (Printf.sprintf "transcript on jobs=%d" jobs)
        ref_t (snd on);
      Alcotest.(check bool)
        (Printf.sprintf "telemetry recorded spans jobs=%d" jobs)
        true
        (Trace.span_count (Telemetry.trace tel) > 0))
    [ 1; 2; 4 ]

(* Every (round, server) pair shows all six pipeline stages (real or
   zero-duration marker), hanging off that round's root span; the
   coordinator contributes client-build/client-decrypt; and the whole
   trace passes the JSONL schema checker. *)
let test_stage_coverage () =
  let tel = Telemetry.create () in
  ignore (run_deployment ~telemetry:tel ~jobs:2 ());
  let spans = Trace.spans (Telemetry.trace tel) in
  let stage_names s = List.map (fun sp -> sp.Trace.name) s in
  let rounds_of root_name =
    List.filter_map
      (fun sp -> if sp.Trace.name = root_name then Some sp.Trace.round else None)
      spans
  in
  let conv_rounds = rounds_of "conv-round" and dial_rounds = rounds_of "dial-round" in
  Alcotest.(check int) "conversation rounds traced" 4 (List.length conv_rounds);
  Alcotest.(check int) "dialing rounds traced" 2 (List.length dial_rounds);
  let check_coverage ~dialing rounds =
    List.iter
      (fun round ->
        for server = 0 to 2 do
          let here =
            List.filter
              (fun sp ->
                sp.Trace.round = round && sp.Trace.server = server
                && sp.Trace.dialing = dialing)
              spans
          in
          List.iter
            (fun stage ->
              if not (List.mem stage (stage_names here)) then
                Alcotest.failf "round %d server %d (dialing=%b): missing %s"
                  round server dialing stage)
            Telemetry.server_stages
        done;
        (* Client-side spans sit at server = -1 under the same round. *)
        List.iter
          (fun name ->
            if
              not
                (List.exists
                   (fun sp ->
                     sp.Trace.name = name && sp.Trace.round = round
                     && sp.Trace.dialing = dialing && sp.Trace.server = -1)
                   spans)
            then Alcotest.failf "round %d (dialing=%b): missing %s" round dialing name)
          [ "client-build"; "client-decrypt" ])
      rounds
  in
  check_coverage ~dialing:false conv_rounds;
  check_coverage ~dialing:true dial_rounds;
  (* Stage spans parent into their round's root span. *)
  let roots =
    List.filter_map
      (fun sp ->
        if sp.Trace.name = "conv-round" || sp.Trace.name = "dial-round" then
          Some sp.Trace.id
        else None)
      spans
  in
  List.iter
    (fun sp ->
      if sp.Trace.server >= 0 then
        match sp.Trace.parent with
        | Some p when List.mem p roots -> ()
        | _ -> Alcotest.failf "stage %s not under a round root" sp.Trace.name)
    spans;
  (match Trace.validate_jsonl (Trace.to_jsonl (Telemetry.trace tel)) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("trace export invalid: " ^ e));
  (* And the registry counted the work: stage histograms exist for the
     real stages, requests flowed, rounds completed. *)
  let reg = Telemetry.metrics tel in
  Alcotest.(check bool) "peel stage observed" true
    (Metrics.hist_count
       (Metrics.histogram reg ~labels:[ ("stage", "peel") ] "vuvuzela_stage_ms")
    > 0);
  Alcotest.check feq "conv rounds counted" 4.
    (Metrics.counter_value
       (Metrics.counter reg ~labels:[ ("kind", "conv") ] "vuvuzela_rounds_total"));
  Alcotest.check feq "dial rounds counted" 2.
    (Metrics.counter_value
       (Metrics.counter reg ~labels:[ ("kind", "dial") ] "vuvuzela_rounds_total"))

(* The deployment's ledger: every participant is charged once per
   attempt, the gauges follow, and the spend equals the composition
   theorem applied to the deployment's actual noise parameters. *)
let test_deployment_ledger () =
  let tel = Telemetry.create () in
  let net = make_net ~telemetry:tel ~budget_warn:1e-3 ~jobs:1 () in
  let a = Network.connect ~seed:"a" net in
  let _b = Network.connect ~seed:"b" net in
  ignore (Network.run_schedule ~dial_every:2 net ~rounds:4);
  Network.shutdown net;
  let ledger =
    match Telemetry.ledger tel with
    | Some l -> l
    | None -> Alcotest.fail "deployment created no ledger"
  in
  Alcotest.(check int) "both clients charged" 2 (Ledger.clients ledger);
  Alcotest.(check (pair int int)) "4 conv + 2 dial attempts" (4, 2)
    (Ledger.rounds ledger ~client:(Client.public_key a));
  let expected =
    let c =
      Composition.compose ~k:4 ~d:Composition.default_d
        (Mechanism.conversation conv_noise)
    and g =
      Composition.compose ~k:2 ~d:Composition.default_d
        (Mechanism.dialing dial_noise)
    in
    { Mechanism.eps = c.Mechanism.eps +. g.Mechanism.eps;
      delta = c.Mechanism.delta +. g.Mechanism.delta }
  in
  let spent = Ledger.spent ledger ~client:(Client.public_key a) in
  Alcotest.check feq "deployment eps matches Theorem 2" expected.Mechanism.eps
    spent.Mechanism.eps;
  Alcotest.check feq "deployment delta matches Theorem 2"
    expected.Mechanism.delta spent.Mechanism.delta;
  let reg = Telemetry.metrics tel in
  Alcotest.check feq "eps gauge follows the ledger" expected.Mechanism.eps
    (Metrics.gauge_value (Metrics.gauge reg "vuvuzela_budget_eps_max"));
  Alcotest.check feq "both clients over the tiny warn threshold" 2.
    (Metrics.gauge_value (Metrics.gauge reg "vuvuzela_budget_over_warn_clients"))

(* Satellite (f): injected [Delay_ms] is virtual — it reaches the
   supervisor's elapsed_ms (deadline accounting) and its own counter,
   but never the wall-clock latency histogram. *)
let test_injected_delay_excluded_from_latency () =
  let tel = Telemetry.create () in
  let plan =
    match Vuvuzela_faults.Fault.parse "delay(500)@1:1" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let net = make_net ~telemetry:tel ~fault_plan:plan ~jobs:1 () in
  let _a = Network.connect ~seed:"a" net in
  let _b = Network.connect ~seed:"b" net in
  let report = Network.run ~kind:Round.Conversation net in
  Network.shutdown net;
  Alcotest.(check int) "no retry needed" 1 report.Network.attempts;
  let reg = Telemetry.metrics tel in
  Alcotest.check feq "delay counter carries the stall" 500.
    (Metrics.counter_value
       (Metrics.counter reg "vuvuzela_injected_delay_ms_total"));
  Alcotest.check feq "fault counted by kind" 1.
    (Metrics.counter_value
       (Metrics.counter reg ~labels:[ ("kind", "delay") ]
          "vuvuzela_faults_injected_total"));
  let h =
    Metrics.histogram reg ~labels:[ ("kind", "conv") ] "vuvuzela_round_ms"
  in
  Alcotest.(check int) "one latency sample" 1 (Metrics.hist_count h);
  (* elapsed = wall + 500 exactly; the histogram recorded wall only. *)
  Alcotest.check (Alcotest.float 1e-6) "histogram excludes virtual delay"
    report.Network.elapsed_ms
    (Metrics.hist_sum h +. 500.);
  (* The fault left its mark on the trace. *)
  Alcotest.(check bool) "span annotated" true
    (List.exists
       (fun sp -> List.mem_assoc "fault.delay" sp.Trace.annotations)
       (Trace.spans (Telemetry.trace tel)))

(* A crash fault forces a retry: attempts/retries/aborts land in the
   counters and the recovered round still counts as completed. *)
let test_retry_counters () =
  let tel = Telemetry.create () in
  let plan =
    match Vuvuzela_faults.Fault.parse "crash@1:1" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let net = make_net ~telemetry:tel ~fault_plan:plan ~jobs:1 () in
  let _a = Network.connect ~seed:"a" net in
  let _b = Network.connect ~seed:"b" net in
  let report = Network.run ~kind:Round.Conversation net in
  Network.shutdown net;
  Alcotest.(check int) "recovered on attempt 2" 2 report.Network.attempts;
  Alcotest.(check bool) "round succeeded" true (report.Network.failure = None);
  let reg = Telemetry.metrics tel in
  let v ?labels name =
    Metrics.counter_value (Metrics.counter reg ?labels name)
  in
  let conv = [ ("kind", "conv") ] in
  Alcotest.check feq "attempts" 2. (v ~labels:conv "vuvuzela_round_attempts_total");
  Alcotest.check feq "retries" 1. (v ~labels:conv "vuvuzela_round_retries_total");
  Alcotest.check feq "completions" 1. (v ~labels:conv "vuvuzela_rounds_total");
  Alcotest.check feq "no failures" 0. (v ~labels:conv "vuvuzela_round_failures_total");
  Alcotest.check feq "crash counted" 1.
    (v ~labels:[ ("kind", "crash") ] "vuvuzela_faults_injected_total");
  (* Both attempts charged the ledger — a retry redraws noise. *)
  match Telemetry.ledger tel with
  | Some ledger ->
      Alcotest.(check (pair int int)) "two conv charges" (2, 0)
        (Ledger.rounds ledger
           ~client:(Client.public_key (List.hd (Network.clients net))))
  | None -> Alcotest.fail "no ledger"

let suite =
  let tc = Alcotest.test_case in
  ( "telemetry",
    [
      tc "counter and gauge semantics" `Quick test_counter_gauge;
      tc "histogram bucketing and quantiles" `Quick test_histogram_quantiles;
      tc "prometheus and json export" `Quick test_prometheus_exposition;
      tc "span nesting and durations" `Quick test_trace_nesting;
      tc "jsonl schema checker rejects" `Quick test_validate_rejects;
      tc "cross-process span merge" `Quick test_remote_span_merge;
      tc "prometheus deterministic + escaped" `Quick
        test_prometheus_deterministic_escaped;
      tc "ledger matches composition theorem" `Quick
        test_ledger_matches_composition;
      tc "ledger monotone, warns once" `Quick test_ledger_monotone_and_warns;
      tc "bit-identical with telemetry on/off" `Quick
        test_identical_with_and_without_telemetry;
      tc "all six stages per (round, server)" `Quick test_stage_coverage;
      tc "deployment ledger vs Theorem 2" `Quick test_deployment_ledger;
      tc "injected delay excluded from latency" `Quick
        test_injected_delay_excluded_from_latency;
      tc "fault retry counters" `Quick test_retry_counters;
    ] )
