(* The multicore round engine: the domain pool's combinators, and the
   determinism contract — a seeded deployment must produce bit-identical
   observables (histograms, events, reports) at any job count, because
   every RNG draw stays on the coordinating domain. *)

open Vuvuzela_dp
open Vuvuzela
module Pool = Vuvuzela_parallel.Pool

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "jobs" 4 (Pool.jobs pool);
  List.iter
    (fun n ->
      let a = Array.init n (fun i -> i) in
      let f i x = (i * 31) + x in
      Alcotest.(check (array int))
        (Printf.sprintf "mapi %d" n)
        (Array.mapi f a) (Pool.mapi_array pool f a);
      let g x = x * x in
      Alcotest.(check (array int))
        (Printf.sprintf "map %d" n)
        (Array.map g a) (Pool.map_array pool g a);
      (* iter_array visits every index exactly once. *)
      let hits = Array.make n 0 in
      Pool.iter_array pool (fun i -> hits.(i) <- hits.(i) + 1) a;
      Alcotest.(check (array int))
        (Printf.sprintf "iter %d" n)
        (Array.make n 1) hits)
    [ 0; 1; 2; 3; 7; 8; 64; 1000 ]

let test_pool_run_and_exceptions () =
  let pool = Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let r = Pool.run pool [| (fun () -> 10); (fun () -> 20); (fun () -> 30) |] in
  Alcotest.(check (array int)) "run results in order" [| 10; 20; 30 |] r;
  (* A worker's exception reaches the caller; the pool survives it. *)
  Alcotest.check_raises "exception propagates" Exit (fun () ->
      ignore
        (Pool.map_array pool
           (fun x -> if x = 777 then raise Exit else x)
           (Array.init 1000 Fun.id)));
  Alcotest.(check (array int)) "pool still usable" [| 0; 2; 4 |]
    (Pool.map_array pool (fun x -> 2 * x) [| 0; 1; 2 |])

let test_pool_jobs_one_is_sequential () =
  let pool = Pool.create ~jobs:1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (* With one job everything runs on the calling domain — side effects
     land in submission order. *)
  let seen = ref [] in
  ignore
    (Pool.mapi_array pool
       (fun i _ ->
         seen := i :: !seen;
         i)
       (Array.make 16 ()));
  Alcotest.(check (list int)) "in order" (List.init 16 (fun i -> 15 - i)) !seen

(* ------------------------------------------------------------------ *)
(* Deployment determinism across job counts                            *)
(* ------------------------------------------------------------------ *)

(* Run a small seeded deployment (dialing + 6 conversation rounds) and
   summarize everything observable: the last server's histogram, every
   round report's accounting, and every client event. *)
let run_deployment ?pipeline_chunk ~jobs () =
  let net =
    Network.of_config
      Network.Config.(
        default |> with_seed "par-det"
        |> with_noise (Laplace.params ~mu:3. ~b:1.)
        |> with_dial_noise (Laplace.params ~mu:2. ~b:1.)
        |> with_noise_mode Noise.Sampled |> with_jobs jobs
        |>
        match pipeline_chunk with
        | None -> Fun.id
        | Some chunk -> with_pipeline ~chunk true)
  in
  Alcotest.(check int) "configured jobs" jobs (Network.jobs net);
  let a = Network.connect ~seed:"a" net in
  let b = Network.connect ~seed:"b" net in
  let _idle =
    List.init 3 (fun i -> Network.connect ~seed:(Printf.sprintf "i%d" i) net)
  in
  Client.dial a ~callee_pk:(Client.public_key b);
  Client.start_conversation a ~peer_pk:(Client.public_key b);
  let dial_report = Network.run ~kind:Round.Dialing net in
  List.iter
    (fun (c, evs) ->
      List.iter
        (function
          | Client.Incoming_call { caller; _ } ->
              Client.start_conversation c ~peer_pk:caller
          | _ -> ())
        evs)
    dial_report.Network.events;
  Client.send a "hello determinism";
  Client.send b "same bytes at any job count";
  let reports = Network.run_rounds net 6 in
  let histogram =
    match Chain.observed_histogram (Network.chain net) with
    | Some h -> (h.Deaddrop.m1, h.Deaddrop.m2)
    | None -> (-1, -1)
  in
  let transcript =
    List.map
      (fun r ->
        Printf.sprintf "round=%d dialing=%b batch=%d wire=%d acks=%d [%s]"
          r.Network.round r.Network.dialing r.Network.batch_size
          r.Network.wire_bytes r.Network.confirmed_acks
          (String.concat "; "
             (List.concat_map
                (fun (c, evs) ->
                  List.map
                    (fun e ->
                      Vuvuzela_crypto.Bytes_util.to_hex (Client.public_key c)
                      ^ ":"
                      ^ Format.asprintf "%a" Client.pp_event e)
                    evs)
                r.Network.events)))
      (dial_report :: reports)
  in
  Network.shutdown net;
  (histogram, transcript)

let test_deployment_determinism () =
  let ref_h, ref_t = run_deployment ~jobs:1 () in
  (* The conversation actually happened... *)
  Alcotest.(check bool) "events occurred" true
    (List.exists (fun line -> String.length line > 60) ref_t);
  (* ...and replays bit-identically under 2 and 4 domains, lockstep or
     with the relay streaming chunked batch parts. *)
  List.iter
    (fun (jobs, pipeline_chunk) ->
      let h, t = run_deployment ?pipeline_chunk ~jobs () in
      let label =
        Printf.sprintf "jobs=%d%s" jobs
          (match pipeline_chunk with
          | None -> ""
          | Some c -> Printf.sprintf " chunk=%d" c)
      in
      Alcotest.(check (pair int int)) ("histogram " ^ label) ref_h h;
      Alcotest.(check (list string)) ("transcript " ^ label) ref_t t)
    [ (2, None); (4, None); (1, Some 1); (2, Some 3); (4, Some 4) ]

let test_standalone_server_pool () =
  (* A server created with jobs > 1 and no shared pool owns one, and
     [shutdown] is idempotent. *)
  let cfg =
    {
      Server.position = 0;
      chain_len = 1;
      noise = Laplace.params ~mu:2. ~b:1.;
      dial_noise = Laplace.params ~mu:1. ~b:1.;
      noise_mode = Noise.Deterministic;
      dial_kind = Dialing.Plain;
      jobs = 2;
      deaddrop_shards = 1;
    }
  in
  let s =
    Server.create ~rng_seed:(Bytes.of_string "solo") ~cfg ~suffix_pks:[] ()
  in
  Alcotest.(check int) "server jobs" 2 (Server.jobs s);
  Server.shutdown s;
  Server.shutdown s

let suite =
  let tc = Alcotest.test_case in
  ( "parallel",
    [
      tc "pool matches sequential" `Quick test_pool_matches_sequential;
      tc "pool run and exceptions" `Quick test_pool_run_and_exceptions;
      tc "pool jobs=1 sequential" `Quick test_pool_jobs_one_is_sequential;
      tc "deployment bit-identical across jobs" `Quick
        test_deployment_determinism;
      tc "standalone server pool" `Quick test_standalone_server_pool;
    ] )
