(* The transport's framing layer, attacked from the byte-stream side:
   TCP delivers frames in arbitrary fragments, so the decoder must
   reassemble exactly — across 1-byte drips, length prefixes split at
   every offset, many frames coalesced into one read — and reject
   oversized or truncated input with a typed error, never an allocation
   proportional to attacker-chosen lengths. *)

open Vuvuzela_crypto
module Frame = Vuvuzela_transport.Frame
module Addr = Vuvuzela_transport.Addr
module Wire = Vuvuzela_mixnet.Wire
open Vuvuzela

let drain decoder =
  let rec go acc =
    match Frame.next decoder with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error e
  in
  go []

let feed_all decoder b = Frame.feed decoder b ~off:0 ~len:(Bytes.length b)

(* Round-trip one frame through every split point of its encoding: the
   length prefix itself lands on a fragment boundary at offsets 1..3. *)
let test_split_everywhere () =
  let payload = Bytes.of_string "split-me-anywhere" in
  let wire = Frame.encode payload in
  for cut = 0 to Bytes.length wire do
    let d = Frame.decoder () in
    Frame.feed d wire ~off:0 ~len:cut;
    Frame.feed d wire ~off:cut ~len:(Bytes.length wire - cut);
    match drain d with
    | Ok [ p ] ->
        Alcotest.(check bytes)
          (Printf.sprintf "cut at %d" cut)
          payload p
    | Ok l ->
        Alcotest.failf "cut at %d: %d frames instead of 1" cut (List.length l)
    | Error e -> Alcotest.failf "cut at %d: %s" cut e
  done

(* Seeded fuzz: random frame sequences delivered under adversarial
   chunkings (1-byte drips, random fragments, everything coalesced)
   must reassemble to exactly the sent sequence. *)
let test_fuzz_reassembly () =
  let rng = Drbg.of_string "frame-fuzz" in
  for trial = 1 to 40 do
    let frames =
      List.init
        (1 + Drbg.uniform ~rng 6)
        (fun _ -> Drbg.generate rng (Drbg.uniform ~rng 2048))
    in
    let wire = Bytes.concat Bytes.empty (List.map Frame.encode frames) in
    let chunking = Drbg.uniform ~rng 3 in
    let d = Frame.decoder () in
    let received = ref [] in
    let deliver off len =
      Frame.feed d wire ~off ~len;
      match drain d with
      | Ok ps -> received := !received @ ps
      | Error e -> Alcotest.failf "trial %d: decoder rejected: %s" trial e
    in
    (match chunking with
    | 0 ->
        (* 1-byte drip: the pathological slow sender *)
        for i = 0 to Bytes.length wire - 1 do
          deliver i 1
        done
    | 1 ->
        (* random fragments *)
        let off = ref 0 in
        while !off < Bytes.length wire do
          let len =
            min (1 + Drbg.uniform ~rng 97) (Bytes.length wire - !off)
          in
          deliver !off len;
          off := !off + len
        done
    | _ -> deliver 0 (Bytes.length wire));
    Alcotest.(check int)
      (Printf.sprintf "trial %d: frame count" trial)
      (List.length frames) (List.length !received);
    List.iter2
      (fun sent got ->
        Alcotest.(check bytes)
          (Printf.sprintf "trial %d: payload" trial)
          sent got)
      frames !received
  done

(* A truncated tail is silence, not an error: the decoder waits for the
   rest (the connection teardown is what reports it). *)
let test_truncated_tail () =
  let wire = Frame.encode (Bytes.of_string "never finishes") in
  let d = Frame.decoder () in
  Frame.feed d wire ~off:0 ~len:(Bytes.length wire - 3);
  (match Frame.next d with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "truncated frame decoded"
  | Error e -> Alcotest.failf "truncated frame rejected: %s" e);
  Alcotest.(check int)
    "partial bytes buffered"
    (Bytes.length wire - 3)
    (Frame.buffered d)

(* An oversized length prefix is rejected as soon as the header is
   readable — no allocation of attacker-chosen size — and poisons the
   decoder for good (the stream has lost sync). *)
let test_oversized_prefix_rejected () =
  let evil = Bytes.create 4 in
  Bytes.set_int32_le evil 0 (Int32.of_int (Frame.max_payload + 1));
  let d = Frame.decoder () in
  feed_all d evil;
  (match Frame.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized prefix accepted");
  (* sticky: a well-formed frame after the poison still errors *)
  feed_all d (Frame.encode (Bytes.of_string "too late"));
  match Frame.next d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "poisoned decoder recovered"

let test_encode_oversized_raises () =
  match Frame.encode (Bytes.create (Frame.max_payload + 1)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized encode accepted"

(* The same hard limit guards the Wire reader (satellite: no unbounded
   Bytes.create from a hostile length prefix). *)
let test_wire_limit () =
  let w = Wire.Writer.create () in
  Wire.Writer.u32 w (Wire.max_frame_len + 1);
  let r = Wire.Reader.of_bytes (Wire.Writer.contents w) in
  match Wire.Reader.bytes_var r with
  | exception Wire.Error _ -> ()
  | _ -> Alcotest.fail "Wire accepted an oversized length prefix"

(* ... and the Rpc batch reader: a forged count × item_len that
   multiplies past the limit is rejected before allocation. *)
let test_rpc_batch_limit () =
  let w = Wire.Writer.create () in
  Wire.Writer.u32 w 0x56555655;
  (* magic *)
  Wire.Writer.u8 w 1;
  (* version *)
  Wire.Writer.u8 w 3;
  (* Conv_batch tag *)
  Wire.Writer.u32 w 1;
  (* round *)
  Wire.Writer.u32 w 70_000;
  (* count *)
  Wire.Writer.u32 w 70_000;
  (* item_len: 70000 × 70000 ≫ max_frame_len *)
  match Rpc.decode (Wire.Writer.contents w) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Rpc accepted an absurd batch header"

let test_addr_parse () =
  (match Addr.parse "127.0.0.1:7000" with
  | Ok a -> Alcotest.(check string) "ip round-trip" "127.0.0.1:7000" (Addr.to_string a)
  | Error e -> Alcotest.fail e);
  (match Addr.parse ":7000" with
  | Ok a -> Alcotest.(check int) "bare port" 7000 (Addr.port_of a)
  | Error e -> Alcotest.fail e);
  match Addr.parse "no-port" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an address without a port"

let suite =
  ( "transport",
    [
      Alcotest.test_case "frame split at every offset" `Quick
        test_split_everywhere;
      Alcotest.test_case "fuzz reassembly under adversarial chunking" `Quick
        test_fuzz_reassembly;
      Alcotest.test_case "truncated tail waits, buffered" `Quick
        test_truncated_tail;
      Alcotest.test_case "oversized prefix rejected, decoder poisoned" `Quick
        test_oversized_prefix_rejected;
      Alcotest.test_case "oversized encode raises" `Quick
        test_encode_oversized_raises;
      Alcotest.test_case "Wire length limit" `Quick test_wire_limit;
      Alcotest.test_case "Rpc batch header limit" `Quick test_rpc_batch_limit;
      Alcotest.test_case "address parsing" `Quick test_addr_parse;
    ] )
