#!/bin/sh
# Tier-1 gate: build everything, then run the full test suite —
# crypto vectors, protocol, DP accounting, @prop differential
# properties, @chaos fault schedules, @smoke trace validation, and the
# @net loopback multi-process deployment (which skips itself where the
# sandbox forbids sockets).  This is the determinism gate: run it
# before every push, and point any future CI at it.
#
# For quick iteration, `dune build @fast` runs just the alcotest and
# smoke suites, skipping @net/@chaos/@prop.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest
